//===-- profile/PairRunner.cpp - Benchmark-pair experiment driver ---------===//
//
// Part of the HFuse reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "profile/PairRunner.h"

#include "cudalang/ASTPrinter.h"
#include "gpusim/Occupancy.h"
#include "ir/RegAlloc.h"
#include "support/BinaryCodec.h"
#include "support/FaultInjector.h"
#include "support/Hashing.h"
#include "support/StringUtils.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"
#include "transform/Fusion.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <climits>

using namespace hfuse;
using namespace hfuse::gpusim;
using namespace hfuse::kernels;
using namespace hfuse::profile;

unsigned hfuse::profile::nextSearchRunSeq() {
  static std::atomic<unsigned> NextRunSeq{0};
  return NextRunSeq.fetch_add(1, std::memory_order_relaxed) + 1;
}

PairRunner::PairRunner(BenchKernelId A, BenchKernelId B, Options Opts)
    : IdA(A), IdB(B), Opts(std::move(Opts)) {
  // Null means the process-wide default cache, so independent runners
  // (e.g. the bench loops over all 16 pairs) share kernel compiles.
  Cache = this->Opts.Cache
              ? this->Opts.Cache
              : std::shared_ptr<CompileCache>(&globalCompileCache(),
                                              [](CompileCache *) {});

  // An empty token is upgraded to a private live one so the cancel-*
  // fault sites (and callers holding a copy of Options) always have a
  // real token to fire; it has no deadline and no external cancel()
  // caller, so it cannot fire on its own.
  if (!this->Opts.Cancel.valid())
    this->Opts.Cancel = CancellationToken::make();

  DiagnosticEngine Diags;
  if (this->Opts.UseCompileCache) {
    K1 = Cache->getBenchKernel(A, /*RegBound=*/0, Diags, nullptr,
                               this->Opts.Cancel);
    K2 = Cache->getBenchKernel(B, /*RegBound=*/0, Diags, nullptr,
                               this->Opts.Cancel);
  } else {
    // Seed cost profile: compile both inputs from scratch.
    Cache->count(&CompileCache::Stats::KernelCompiles, 2);
    K1 = compileBenchKernel(A, /*RegBound=*/0, Diags);
    K2 = compileBenchKernel(B, /*RegBound=*/0, Diags);
  }
  if (!K1 || !K2) {
    Err = "kernel compilation failed:\n" + Diags.str();
    return;
  }

  std::string CtxErr;
  std::unique_ptr<SimContext> C = makeContext(CtxErr);
  if (!C) {
    Err = CtxErr;
    return;
  }
  Primary = std::move(*C);
  FreeContexts.push_back(&Primary);
  Ready = true;
}

std::unique_ptr<PairRunner::SimContext>
PairRunner::makeContext(std::string &Error) const {
  auto C = std::make_unique<SimContext>();

  WorkloadConfig C1;
  C1.SizeScale = Opts.Scale1;
  C1.SimSMs = Opts.SimSMs;
  C1.Seed = Opts.Seed;
  WorkloadConfig C2 = C1;
  C2.SizeScale = Opts.Scale2;
  C2.Seed = Opts.Seed + 1;
  C->W1 = makeWorkload(IdA, C1);
  C->W2 = makeWorkload(IdB, C2);
  if (!C->W1 || !C->W2) {
    Error = "workload construction failed";
    return nullptr;
  }

  SimConfig SC;
  SC.Arch = Opts.Arch;
  SC.SimSMs = Opts.SimSMs;
  SC.ModelL2 = Opts.ModelL2;
  SC.WatchdogCycles = Opts.WatchdogCycles;
  SC.WallTimeoutMs = Opts.WallTimeoutMs;
  SC.Cancel = Opts.Cancel;
  C->Sim = std::make_unique<Simulator>(SC);
  C->W1->setup(*C->Sim);
  C->W2->setup(*C->Sim);
  return C;
}

PairRunner::SimContext *PairRunner::acquireContext(std::string &Error) {
  {
    std::lock_guard<std::mutex> Lock(ContextMu);
    if (!FreeContexts.empty()) {
      SimContext *C = FreeContexts.back();
      FreeContexts.pop_back();
      return C;
    }
  }
  // Build a fresh context outside the lock; setup is the expensive part.
  std::unique_ptr<SimContext> C = makeContext(Error);
  if (!C)
    return nullptr;
  std::lock_guard<std::mutex> Lock(ContextMu);
  ExtraContexts.push_back(std::move(C));
  return ExtraContexts.back().get();
}

void PairRunner::releaseContext(SimContext *C) {
  std::lock_guard<std::mutex> Lock(ContextMu);
  FreeContexts.push_back(C);
}

unsigned PairRunner::soloRegs(int Which) const {
  return (Which == 0 ? K1 : K2)->IR->ArchRegsPerThread;
}

int PairRunner::commonGrid() const {
  return std::max(Primary.W1->preferredGrid(), Primary.W2->preferredGrid());
}

SimResult PairRunner::fail(const std::string &Message) const {
  SimResult R;
  R.Error = Message;
  return R;
}

namespace {

/// Classifies a failed SimResult into the error taxonomy, preserving
/// the transient flag of fault-injected runs.
Status statusFromSim(const SimResult &R) {
  // A cancelled run is a verdict about the request, not the candidate;
  // transient so retry machinery never treats it as a kernel property.
  if (R.Cancelled)
    return Status::transient(
        R.Error.find("deadline") != std::string::npos
            ? ErrorCode::DeadlineExceeded
            : ErrorCode::Cancelled,
        R.Error);
  ErrorCode Code = ErrorCode::SimError;
  if (R.Deadlock)
    Code = ErrorCode::SimDeadlock;
  else if (R.TimedOut)
    Code = ErrorCode::SimTimeout;
  else if (R.BudgetExceeded)
    Code = ErrorCode::SimBudget;
  else if (R.Error.rfind("verification failed", 0) == 0)
    Code = ErrorCode::VerifyError;
  return R.FaultInjected ? Status::transient(Code, R.Error)
                         : Status(Code, R.Error);
}

} // namespace

SimResult PairRunner::runLaunches(
    SimContext &C, const std::vector<KernelLaunch> &Launches, int Threads1,
    int Threads2, StatsLevel Level, uint64_t CycleBudget) {
  C.W1->clearOutputs(*C.Sim);
  C.W2->clearOutputs(*C.Sim);
  SimResult R = C.Sim->run(Launches, Level, CycleBudget);
  if (!R.Ok)
    return R;
  if (Opts.Verify) {
    std::string VerifyErr;
    if (Threads1 > 0 && !C.W1->verify(*C.Sim, Threads1, VerifyErr)) {
      R.Ok = false;
      R.Error = "verification failed: " + VerifyErr;
      return R;
    }
    if (Threads2 > 0 && !C.W2->verify(*C.Sim, Threads2, VerifyErr)) {
      R.Ok = false;
      R.Error = "verification failed: " + VerifyErr;
      return R;
    }
  }
  return R;
}

SimResult PairRunner::runNative() {
  if (!Ready)
    return fail(Err);
  Workload *W1 = Primary.W1.get(), *W2 = Primary.W2.get();
  KernelLaunch L1;
  L1.Kernel = K1->IR.get();
  L1.GridDim = W1->preferredGrid();
  L1.BlockDim = W1->preferredBlock();
  L1.BlockDimY = W1->preferredBlockY();
  L1.DynSharedBytes = W1->dynSharedBytes();
  L1.Params = W1->params();
  L1.Label = kernelDisplayName(IdA);
  KernelLaunch L2;
  L2.Kernel = K2->IR.get();
  L2.GridDim = W2->preferredGrid();
  L2.BlockDim = W2->preferredBlock();
  L2.BlockDimY = W2->preferredBlockY();
  L2.DynSharedBytes = W2->dynSharedBytes();
  L2.Params = W2->params();
  L2.Label = kernelDisplayName(IdB);
  return runLaunches(Primary, {L1, L2},
                     L1.GridDim * W1->preferredBlockThreads(),
                     L2.GridDim * W2->preferredBlockThreads(),
                     StatsLevel::Full);
}

SimResult PairRunner::runSolo(int Which) {
  if (!Ready)
    return fail(Err);
  Workload *W = Which == 0 ? Primary.W1.get() : Primary.W2.get();
  const CompiledKernel *K = Which == 0 ? K1.get() : K2.get();
  KernelLaunch L;
  L.Kernel = K->IR.get();
  L.GridDim = W->preferredGrid();
  L.BlockDim = W->preferredBlock();
  L.BlockDimY = W->preferredBlockY();
  L.DynSharedBytes = W->dynSharedBytes();
  L.Params = W->params();
  L.Label = kernelDisplayName(Which == 0 ? IdA : IdB);
  int Total = L.GridDim * W->preferredBlockThreads();
  return runLaunches(Primary, {L}, Which == 0 ? Total : 0,
                     Which == 1 ? Total : 0, StatsLevel::Full);
}

uint64_t PairRunner::soloIssuedCount(int Which, Status &E,
                                     SearchStats *Stats) {
  std::optional<uint64_t> &Cached = SoloIssued[Which == 0 ? 0 : 1];
  if (Cached)
    return *Cached;
  std::string CtxErr;
  SimContext *Ctx = acquireContext(CtxErr);
  if (!Ctx) {
    E = Status(ErrorCode::WorkloadError, CtxErr);
    return 0;
  }
  Workload *W = Which == 0 ? Ctx->W1.get() : Ctx->W2.get();
  const CompiledKernel *K = Which == 0 ? K1.get() : K2.get();
  KernelLaunch L;
  L.Kernel = K->IR.get();
  L.GridDim = W->preferredGrid();
  L.BlockDim = W->preferredBlock();
  L.BlockDimY = W->preferredBlockY();
  L.DynSharedBytes = W->dynSharedBytes();
  L.Params = W->params();
  L.Label = kernelDisplayName(Which == 0 ? IdA : IdB);
  // Ranking probe only: Minimal stats (TotalIssued is level-invariant)
  // and no output verification.
  W->clearOutputs(*Ctx->Sim);
  SimResult R = Ctx->Sim->run({L}, StatsLevel::Minimal, /*CycleBudget=*/0);
  releaseContext(Ctx);
  if (!R.Ok) {
    E = statusFromSim(R);
    return 0;
  }
  Cache->count(&CompileCache::Stats::SimRuns);
  if (Stats) {
    ++Stats->Simulations;
    Stats->SimulatedInsts += R.TotalIssued;
  }
  Cached = R.TotalIssued;
  return *Cached;
}

SimResult PairRunner::runVFused() {
  if (!Ready)
    return fail(Err);
  if (!VFused) {
    DiagnosticEngine Diags;
    auto Ctx = std::make_unique<cuda::ASTContext>();
    transform::FusionResult FR = transform::fuseVertical(
        *Ctx, K1->fn(), K2->fn(), /*FusedName=*/"", Diags);
    if (!FR.Ok)
      return fail("vertical fusion failed:\n" + Diags.str());
    auto IR = lowerFunction(*Ctx, FR.Fused, /*RegBound=*/0, Diags);
    if (!IR)
      return fail("vertical fusion lowering failed:\n" + Diags.str());
    VFused = std::make_unique<CompiledKernel>();
    VFused->Pre = std::make_unique<transform::PreprocessedKernel>();
    VFused->Pre->Ctx = std::move(Ctx);
    VFused->Pre->Kernel = FR.Fused;
    VFused->IR = std::move(IR);
    VFusedDynShared =
        Primary.W1->dynSharedBytes() + Primary.W2->dynSharedBytes();
  }
  KernelLaunch L;
  L.Kernel = VFused->IR.get();
  int Grid = commonGrid();
  L.GridDim = Grid;
  L.BlockDim = 256;
  L.DynSharedBytes = VFusedDynShared;
  L.Params = Primary.W1->params();
  L.Params.insert(L.Params.end(), Primary.W2->params().begin(),
                  Primary.W2->params().end());
  L.Label = formatString("VFuse(%s+%s)", kernelDisplayName(IdA),
                         kernelDisplayName(IdB));
  return runLaunches(Primary, {L}, Grid * 256, Grid * 256,
                     StatsLevel::Full);
}

std::shared_ptr<ir::IRKernel>
PairRunner::getFusedIR(int D1, int D2, unsigned RegBound,
                       uint32_t &DynShared, Status &Err) {
  // With the cache on, one entry per partition serves every register
  // bound; with it off, each (partition, bound) redoes the pipeline.
  auto Key = std::make_tuple(D1, D2,
                             Opts.UseCompileCache ? 0u : RegBound);
  FusionEntry *Entry;
  {
    std::lock_guard<std::mutex> Lock(FusionCacheMu);
    std::unique_ptr<FusionEntry> &Slot = FusionCache[Key];
    if (!Slot)
      Slot = std::make_unique<FusionEntry>();
    Entry = Slot.get();
  }

  std::lock_guard<std::mutex> Lock(Entry->Mu);
  if (!Entry->Attempted) {
    // Fault-injection point for the fusion stage. Fired faults are
    // transient: return the failure without marking the entry
    // attempted, so a retry redoes the fusion instead of replaying an
    // injected error as if it were a property of the partition.
    if (Status S = FaultInjector::instance().check(
            FaultSite::Fuse, formatString("%d/%d", D1, D2));
        !S.ok()) {
      Err = std::move(S);
      return nullptr;
    }
    Entry->Attempted = true;
    Cache->count(&CompileCache::Stats::FusionRuns);
    DiagnosticEngine Diags;
    Entry->Ctx = std::make_unique<cuda::ASTContext>();
    transform::HorizontalFusionOptions HO;
    HO.D1 = D1;
    HO.D2 = D2;
    HO.Y1 = Primary.W1->preferredBlockY();
    HO.Y2 = Primary.W2->preferredBlockY();
    HO.UsePartialBarriers = Opts.UsePartialBarriers;
    transform::FusionResult FR =
        transform::fuseHorizontal(*Entry->Ctx, K1->fn(), K2->fn(), HO,
                                  Diags);
    if (!FR.Ok) {
      Entry->Err = Status(ErrorCode::FusionUnsupported,
                          "horizontal fusion failed:\n" + Diags.str());
    } else {
      Entry->Fused = FR.Fused;
      Entry->BaseIR = lowerFunctionNoRegAlloc(*Entry->Ctx, FR.Fused, Diags);
      if (!Entry->BaseIR)
        Entry->Err = Status(ErrorCode::CodegenError,
                            "fused kernel lowering failed:\n" + Diags.str());
      Entry->DynShared =
          Primary.W1->dynSharedBytes() + Primary.W2->dynSharedBytes();
    }
  } else if (Entry->ByBound.find(RegBound) == Entry->ByBound.end()) {
    // The AST-level work of this partition is being reused for a new
    // register variant (or a fresh query of a known failure).
    if (!Entry->Err.ok() || Entry->BaseIR)
      Cache->count(&CompileCache::Stats::FusionHits);
  }
  if (!Entry->Err.ok()) {
    Err = Entry->Err;
    return nullptr;
  }
  DynShared = Entry->DynShared;

  auto It = Entry->ByBound.find(RegBound);
  if (It != Entry->ByBound.end()) {
    Cache->count(&CompileCache::Stats::LoweringHits);
    return It->second;
  }

  // A bound at or above the natural allocation is a no-op: alias the
  // unbounded IR so the simulation memo recognizes the identical launch.
  if (Opts.UseCompileCache && RegBound != 0 && Entry->UnboundedRegs != 0 &&
      RegBound >= Entry->UnboundedRegs) {
    auto U = Entry->ByBound.find(0u);
    if (U != Entry->ByBound.end()) {
      Cache->count(&CompileCache::Stats::LoweringHits);
      Entry->ByBound.emplace(RegBound, U->second);
      return U->second;
    }
  }

  // Fault-injection point for the per-bound lowering stage; nothing is
  // memoized for this bound yet, so the failure is naturally retryable.
  if (Status S = FaultInjector::instance().check(
          FaultSite::Lower, formatString("%d/%d:r%u", D1, D2, RegBound));
      !S.ok()) {
    Err = std::move(S);
    return nullptr;
  }

  Cache->count(&CompileCache::Stats::Lowerings);
  auto IR = std::make_shared<ir::IRKernel>(*Entry->BaseIR);
  ir::RegAllocResult RA = ir::allocateRegisters(*IR, RegBound);
  if (!RA.Ok) {
    Err = Status(ErrorCode::RegAllocError,
                 "fused register allocation failed: " + RA.Error);
    return nullptr;
  }
  if (RegBound == 0)
    Entry->UnboundedRegs = IR->ArchRegsPerThread;
  Entry->ByBound.emplace(RegBound, IR);
  return IR;
}

SimResult PairRunner::runHFusedIn(SimContext &C, int D1, int D2,
                                  unsigned RegBound, Status &Err,
                                  SearchStats *Stats, StatsLevel Level,
                                  uint64_t CycleBudget) {
  uint32_t DynShared = 0;
  std::shared_ptr<ir::IRKernel> IR =
      getFusedIR(D1, D2, RegBound, DynShared, Err);
  if (!IR)
    return fail(Err.message());

  int Grid = commonGrid();
  int BlockDim = D1 + D2;
  auto MemoKey = std::make_tuple(
      static_cast<const ir::IRKernel *>(IR.get()), Grid, BlockDim,
      DynShared, static_cast<int>(Level));

  // Disk key for the second-level ResultStore. It mirrors the memo key
  // with pointer identity widened to content identity — the IR dump
  // hash — plus everything else the simulation is a pure function of:
  // launch geometry, stats level, the architecture/simulator model, and
  // the workload identity (pair, seed, scales) that determines the
  // kernel parameters. Verified runs bypass the disk: a served result
  // skips simulation, so the workload outputs verify() needs would not
  // exist.
  const bool UseDisk =
      Opts.UseCompileCache && !Opts.Verify && Cache->hasStore();
  std::string DiskKey;
  if (UseDisk) {
    ByteWriter KW;
    KW.str("sim-result");
    KW.u64(fnv1a64(IR->str()));
    KW.u32(static_cast<uint32_t>(Grid));
    KW.u32(static_cast<uint32_t>(BlockDim));
    KW.u32(DynShared);
    KW.u32(static_cast<uint32_t>(Level));
    KW.str(Opts.Arch.Name);
    KW.u32(static_cast<uint32_t>(Opts.Arch.NumSMs));
    KW.f64(Opts.Arch.ClockGHz);
    KW.u32(static_cast<uint32_t>(Opts.SimSMs));
    KW.u8(Opts.ModelL2 ? 1 : 0);
    KW.u64(static_cast<uint64_t>(Opts.Seed));
    KW.f64(Opts.Scale1);
    KW.f64(Opts.Scale2);
    KW.str(kernelDisplayName(IdA));
    KW.str(kernelDisplayName(IdB));
    DiskKey = KW.take();
  }
  // The retry loop exists for one case: a memoized entry that turns
  // out to be a budget abort looser than what this caller needs. The
  // caller retires that entry (if nobody else has yet) and re-enters
  // the memo as a fresh runner.
  for (;;) {
    std::promise<SimResult> MemoPromise;
    bool IsMemoRunner = false;
    std::shared_ptr<std::shared_future<SimResult>> Entry;
    if (Opts.UseCompileCache) {
      {
        std::lock_guard<std::mutex> Lock(SimMemoMu);
        auto It = SimMemo.find(MemoKey);
        if (It != SimMemo.end()) {
          Entry = It->second;
        } else {
          IsMemoRunner = true;
          Entry = std::make_shared<std::shared_future<SimResult>>(
              MemoPromise.get_future().share());
          SimMemo.emplace(MemoKey, Entry);
        }
      }
      if (!IsMemoRunner) {
        // Served by a completed — or currently running — identical
        // launch; failures replay too (the simulator is deterministic).
        SimResult R = Entry->get();
        if (R.BudgetExceeded) {
          // The stored run was abandoned at its own budget
          // (R.TotalCycles). That verdict is deterministic for any
          // caller at least as tight — aliases sharing the launch get
          // the same abandonment whether they waited on the running
          // future or replayed the stored one. A caller needing more
          // simulation retires the entry and retries; the identity
          // check keeps a concurrent retirement from erasing the
          // fresh runner that replaced it.
          if (CycleBudget == 0 || CycleBudget > R.TotalCycles) {
            std::lock_guard<std::mutex> Lock(SimMemoMu);
            auto It = SimMemo.find(MemoKey);
            if (It != SimMemo.end() && It->second == Entry)
              SimMemo.erase(It);
            continue;
          }
        } else if (R.Ok && CycleBudget != 0 &&
                   R.TotalCycles > CycleBudget) {
          // Full result known to exceed this caller's budget: abandon
          // without simulating — the exact decision a budgeted run
          // would have reached, for free.
          SimResult A;
          A.BudgetExceeded = true;
          A.Error = "cycle budget exceeded";
          A.TotalCycles = CycleBudget;
          R = A;
        }
        Cache->count(&CompileCache::Stats::SimMemoHits);
        if (Stats)
          ++Stats->MemoHits;
        return R;
      }

      // This thread owns the memo entry: consult the disk before
      // simulating. A hit is always a completed Ok run (failures are
      // never persisted), published to the memo in full so concurrent
      // waiters apply their own budget logic exactly as they would to
      // a fresh result.
      if (UseDisk) {
        if (std::optional<SimResult> Disk = Cache->loadSimResult(DiskKey)) {
          SimResult R = std::move(*Disk);
          MemoPromise.set_value(R);
          if (CycleBudget != 0 && R.TotalCycles > CycleBudget) {
            SimResult A;
            A.BudgetExceeded = true;
            A.Error = "cycle budget exceeded";
            A.TotalCycles = CycleBudget;
            R = A;
          }
          if (Stats)
            ++Stats->MemoHits;
          return R;
        }
      }
    }

    KernelLaunch L;
    L.Kernel = IR.get();
    L.GridDim = Grid;
    L.BlockDim = BlockDim;
    L.DynSharedBytes = DynShared;
    L.Params = C.W1->params();
    L.Params.insert(L.Params.end(), C.W2->params().begin(),
                    C.W2->params().end());
    L.Label = formatString("HFuse(%s+%s,%d/%d%s)", kernelDisplayName(IdA),
                           kernelDisplayName(IdB), D1, D2,
                           RegBound ? formatString(",r%u", RegBound).c_str()
                                    : "");
    Cache->count(&CompileCache::Stats::SimRuns);
    if (Stats)
      ++Stats->Simulations;
    SimResult R =
        runLaunches(C, {L}, Grid * D1, Grid * D2, Level, CycleBudget);
    if (Stats) {
      Stats->SimulatedInsts += R.TotalIssued;
      if (R.BudgetExceeded)
        Stats->AbandonedInsts += R.TotalIssued;
    }
    if (IsMemoRunner) {
      // A fault-injected failure is transient: retire the entry before
      // publishing so waiters get the error but any later request
      // re-simulates (the identity check spares a successor entry).
      // Cancelled runs are retired for the same reason — a cancel is a
      // property of the request, never of the launch, so it must not
      // be replayed to an un-cancelled request sharing the key.
      // Deterministic failures stay memoized — replaying them is
      // correct and cheap.
      if ((R.FaultInjected || R.Cancelled) && Opts.UseCompileCache) {
        std::lock_guard<std::mutex> Lock(SimMemoMu);
        auto It = SimMemo.find(MemoKey);
        if (It != SimMemo.end() && It->second == Entry)
          SimMemo.erase(It);
      }
      // Persist only completed, healthy runs (storeSimResult enforces
      // R.Ok): budget aborts depend on the caller's budget, and no
      // failure may ever be servable from cache.
      if (UseDisk)
        Cache->storeSimResult(DiskKey, R);
      MemoPromise.set_value(R);
    }
    return R;
  }
}

SimResult PairRunner::runHFused(int D1, int D2, unsigned RegBound) {
  if (!Ready)
    return fail(Err);
  Status E;
  SimResult R = runHFusedIn(Primary, D1, D2, RegBound, E, nullptr,
                            StatsLevel::Full);
  if (!R.Ok && !E.ok())
    Err = E.message();
  return R;
}

std::optional<unsigned> PairRunner::figure6RegBoundImpl(int D1, int D2,
                                                        Status &Err) {
  const GpuArch &A = Opts.Arch;
  unsigned NRegs1 = K1->IR->ArchRegsPerThread;
  unsigned NRegs2 = K2->IR->ArchRegsPerThread;
  int D0 = D1 + D2;

  // b1/b2: register-limited concurrent blocks of the original kernels.
  long B1 = A.RegsPerSM / (static_cast<long>(D1) * NRegs1);
  long B2 = A.RegsPerSM / (static_cast<long>(D2) * NRegs2);
  if (B1 < 1 || B2 < 1)
    return std::nullopt;

  // Shared memory of the fused kernel.
  uint32_t DynShared = 0;
  std::shared_ptr<ir::IRKernel> IR =
      getFusedIR(D1, D2, /*RegBound=*/0, DynShared, Err);
  if (!IR)
    return std::nullopt;
  uint32_t ShMem = IR->StaticSharedBytes + DynShared;
  long BShMem = ShMem > 0 ? A.SharedMemPerSM / ShMem : LONG_MAX;
  long BThreads = A.MaxThreadsPerSM / D0;

  long B0 = std::min({B1, B2, BShMem, BThreads});
  if (B0 < 1)
    return std::nullopt;

  long R0 = A.RegsPerSM / (B0 * D0);
  R0 = std::min<long>(R0, A.MaxRegsPerThread);
  // Below this there is no room for even the spill scratch registers.
  long MinUseful = ir::RegOverhead + ir::SpillScratchRegs * 2 + 8;
  if (R0 < MinUseful)
    return std::nullopt;
  return static_cast<unsigned>(R0);
}

std::optional<unsigned> PairRunner::figure6RegBound(int D1, int D2) {
  if (!Ready)
    return std::nullopt;
  Status E;
  std::optional<unsigned> R0 = figure6RegBoundImpl(D1, D2, E);
  if (!E.ok())
    Err = E.message();
  return R0;
}

SearchResult PairRunner::searchBestConfig(bool NaiveEvenSplit) {
  auto Start = std::chrono::steady_clock::now();
  SearchResult SR;
  // Process-unique run id, joined against every span this search emits
  // and against the driver's failed:/abandoned: table rows.
  SR.RunId = formatString("s%u:%s+%s", nextSearchRunSeq(),
                          kernelDisplayName(IdA), kernelDisplayName(IdB));
  if (!Ready) {
    // A cancel that landed inside the constructor (input-kernel
    // compilation) is a request verdict, not an internal error.
    SR.Err = Opts.Cancel.cancelled() ? Opts.Cancel.status()
                                     : Status(ErrorCode::Internal, Err);
    SR.Error = SR.Err.message().empty() ? Err : SR.Err.message();
    return SR;
  }
  telemetry::TraceSpan SearchSpan;
  if (telemetry::traceOn())
    SearchSpan.beginSpan(
        "search", SR.RunId,
        formatString("{\"jobs\":%d,\"budget\":\"%s\",\"bound\":\"%s\"}",
                     Opts.SearchJobs, searchBudgetModeName(Opts.Budget),
                     Opts.MeasuredBound ? "measured" : "static"));

  bool Tunable = kernelHasTunableBlockDim(IdA) &&
                 kernelHasTunableBlockDim(IdB);
  int D0 = Tunable
               ? 1024
               : Primary.W1->preferredBlockThreads() +
                     Primary.W2->preferredBlockThreads();

  // A partition must be divisible by the kernel's fixed .y extent so its
  // threads form whole rows of the original block shape.
  auto Feasible = [&](int D1) {
    return D1 % Primary.W1->preferredBlockY() == 0 &&
           (D0 - D1) % Primary.W2->preferredBlockY() == 0;
  };

  std::vector<int> Partitions;
  if (!Tunable || NaiveEvenSplit) {
    if (Feasible(D0 / 2))
      Partitions.push_back(D0 / 2);
  } else {
    for (int D1 = 128; D1 < D0; D1 += 128)
      if (Feasible(D1))
        Partitions.push_back(D1);
  }

  // The search proper runs in three phases so that pruning decisions
  // are a deterministic function of the candidate list, never of
  // worker timing:
  //   1. compile: fuse + lower every candidate (parallel, CPU-bound,
  //      no simulator state needed);
  //   2. prune: walk candidates in canonical measurement order
  //      (partition ascending, unbounded before bounded) and drop the
  //      dominated ones (serial, occupancy arithmetic only);
  //   3. profile: simulate the kept candidates (parallel, one private
  //      simulator context per worker).

  /// One enumerated candidate of the sweep.
  struct Candidate {
    /// Canonical id: the index in this enumeration, stable across
    /// SearchJobs (exported as FusionCandidate::Id and friends).
    int Id = -1;
    int D1 = 0, D2 = 0;
    unsigned RegBound = 0;
    std::shared_ptr<ir::IRKernel> IR;
    uint32_t DynShared = 0;
    int BlocksPerSM = 0;
    /// Index of this partition's unbounded sibling (bounded only).
    int Sibling = -1;
    bool Pruned = false;
    std::string PruneReason;
    int DominatorBlocksPerSM = 0;
    /// Occupancy-dominated but re-admitted under the measured-margin
    /// rule: simulated with the tighter incumbent/(1+margin) budget
    /// instead of being skipped outright.
    bool MarginReadmit = false;
    /// Cut off by the cycle budget (with the budget it ran under and
    /// the instructions it issued before the abort).
    bool Abandoned = false;
    uint64_t AbandonBudget = 0;
    uint64_t AbandonIssued = 0;
    /// Contained failure that retired this candidate (compile, fuse,
    /// lower, or simulate); Ok while the candidate is healthy.
    Status Error;
    /// Never reached: the request was cancelled or deadlined before
    /// this candidate's turn (lands in SearchResult::Unvisited).
    bool Skipped = false;
    std::optional<FusionCandidate> Measured;
  };
  std::vector<Candidate> Cands;
  Cands.reserve(2 * Partitions.size());
  for (int D1 : Partitions) {
    Candidate C;
    C.D1 = D1;
    C.D2 = D0 - D1;
    C.RegBound = 0;
    Cands.push_back(C);
    if (!NaiveEvenSplit) {
      C.Sibling = static_cast<int>(Cands.size()) - 1;
      // RegBound filled during phase 1 (it needs the fused kernel's
      // shared-memory size); a placeholder marks the slot.
      C.RegBound = UINT_MAX;
      Cands.push_back(C);
    }
  }
  for (size_t I = 0; I < Cands.size(); ++I)
    Cands[I].Id = static_cast<int>(I);

  int Jobs = Opts.SearchJobs <= 0
                 ? static_cast<int>(ThreadPool::defaultConcurrency())
                 : Opts.SearchJobs;
  // Phase 3 has up to two candidates per partition in flight.
  Jobs = std::min(Jobs,
                  static_cast<int>(std::max<size_t>(1, Cands.size())));
  std::unique_ptr<ThreadPool> Pool;
  if (Jobs > 1)
    Pool = std::make_unique<ThreadPool>(static_cast<unsigned>(Jobs));

  // Phase 1: one task per partition lowers the unbounded variant,
  // derives r0, and lowers the bounded variant (sharing the fusion).
  size_t PerPart = NaiveEvenSplit ? 1 : 2;
  {
    telemetry::TraceSpan PhaseSpan("phase", "compile");
    parallelFor(Pool.get(), Partitions.size(), [&](size_t I) {
      Candidate &U = Cands[I * PerPart];
      // Deterministic cancel point for the compile phase: the fault
      // site fires the *request's* token (it never fails a candidate),
      // so injected cancellation reproduces exactly.
      if (!FaultInjector::instance()
               .check(FaultSite::CancelCompile,
                      formatString("%d/%d", U.D1, U.D2))
               .ok())
        Opts.Cancel.cancel();
      if (Opts.Cancel.cancelled()) {
        U.Skipped = true;
        if (!NaiveEvenSplit)
          Cands[I * PerPart + 1].Skipped = true;
        return;
      }
      {
        telemetry::TraceSpan CandSpan;
        if (telemetry::traceOn())
          CandSpan.beginSpan(
              "fuse", formatString("c%d %d/%d", U.Id, U.D1, U.D2),
              formatString("{\"run\":\"%s\",\"cand\":%d}", SR.RunId.c_str(),
                           U.Id));
        U.IR = getFusedIR(U.D1, U.D2, 0, U.DynShared, U.Error);
      }
      if (U.IR)
        U.BlocksPerSM =
            computeOccupancy(Opts.Arch, D0,
                             static_cast<int>(U.IR->ArchRegsPerThread),
                             U.IR->StaticSharedBytes + U.DynShared)
                .BlocksPerSM;
      if (NaiveEvenSplit)
        return;
      Candidate &B = Cands[I * PerPart + 1];
      Status BoundErr;
      std::optional<unsigned> R0 = figure6RegBoundImpl(B.D1, B.D2, BoundErr);
      if (!R0)
        return; // no bounded trial for this partition (seed behavior)
      B.RegBound = *R0;
      {
        telemetry::TraceSpan CandSpan;
        if (telemetry::traceOn())
          CandSpan.beginSpan(
              "fuse",
              formatString("c%d %d/%d:r%u", B.Id, B.D1, B.D2, B.RegBound),
              formatString("{\"run\":\"%s\",\"cand\":%d}", SR.RunId.c_str(),
                           B.Id));
        B.IR = getFusedIR(B.D1, B.D2, *R0, B.DynShared, B.Error);
      }
      if (B.IR)
        B.BlocksPerSM =
            computeOccupancy(Opts.Arch, D0,
                             static_cast<int>(B.IR->ArchRegsPerThread),
                             B.IR->StaticSharedBytes + B.DynShared)
                .BlocksPerSM;
    });
  }

  // Phase 2: occupancy pruning over the canonical order. Level 1 rules
  // preserve results: a candidate that cannot launch, or a bounded
  // variant whose bound fails to raise blocks/SM over its partition's
  // unbounded sibling (same code plus spill traffic at no occupancy
  // gain), cannot be the winner. Level 2 adds strict cross-partition
  // dominance: MaxSeen tracks the best blocks/SM among candidates kept
  // so far, and later candidates strictly below it are skipped — a
  // heuristic that typically halves the sweep but may miss a
  // low-occupancy winner by a few percent. Identical-IR variants
  // (bound at/above the natural allocation) are exempt from pruning —
  // they replay the sibling's memoized result for free.
  telemetry::TraceSpan PruneSpan("phase", "prune");
  int MaxSeen = 0;
  for (Candidate &C : Cands) {
    // Deterministic cancel point for the prune phase; a cancelled
    // request leaves every not-yet-resolved candidate unvisited (ones
    // already retired by a contained failure keep their verdict).
    if (!FaultInjector::instance()
             .check(FaultSite::CancelPrune,
                    formatString("%d/%d", C.D1, C.D2))
             .ok())
      Opts.Cancel.cancel();
    if (Opts.Cancel.cancelled()) {
      if (C.Error.ok())
        C.Skipped = true;
      continue;
    }
    if (C.Skipped || !C.IR || C.RegBound == UINT_MAX)
      continue;
    if (Opts.PruneLevel <= 0) {
      MaxSeen = std::max(MaxSeen, C.BlocksPerSM);
      continue;
    }
    const bool IsBounded = C.RegBound != 0;
    Candidate *Sib =
        IsBounded && C.Sibling >= 0 ? &Cands[C.Sibling] : nullptr;
    bool AliasOfSibling = Sib && Sib->IR == C.IR;
    if (C.BlocksPerSM <= 0) {
      C.Pruned = true;
      C.PruneReason = "cannot launch: 0 blocks/SM";
    } else if (AliasOfSibling && !Sib->Pruned) {
      // Free via memoization; never prune.
    } else if (Sib && Sib->IR && !Sib->Pruned && !AliasOfSibling &&
               C.BlocksPerSM <= Sib->BlocksPerSM) {
      C.Pruned = true;
      C.DominatorBlocksPerSM = Sib->BlocksPerSM;
      C.PruneReason = formatString(
          "r%u gives %d blocks/SM, no gain over the unbounded variant's "
          "%d: same code plus spills cannot win",
          C.RegBound, C.BlocksPerSM, Sib->BlocksPerSM);
    } else if (Opts.PruneLevel >= 2 && C.BlocksPerSM < MaxSeen) {
      if (Opts.Budget != SearchBudgetMode::Off) {
        // Measured-margin rule: instead of trusting the occupancy
        // heuristic, re-admit the dominated candidate under the
        // tighter incumbent/(1+margin) budget. A genuinely fast one
        // completes and competes; an abandoned one is measured to be
        // worse than incumbent/(1+margin), bounding the aggressive
        // sweep's Best to within (1+margin)x of the true optimum.
        C.MarginReadmit = true;
        C.DominatorBlocksPerSM = MaxSeen;
      } else {
        C.Pruned = true;
        C.DominatorBlocksPerSM = MaxSeen;
        C.PruneReason = formatString(
            "%d blocks/SM strictly dominated by a measured candidate "
            "with %d",
            C.BlocksPerSM, MaxSeen);
      }
    }
    if (!C.Pruned)
      MaxSeen = std::max(MaxSeen, C.BlocksPerSM);
  }
  PruneSpan.finish();

  // Phase 3: simulate the kept candidates.
  std::vector<size_t> Kept;
  for (size_t I = 0; I < Cands.size(); ++I)
    if (Cands[I].IR && Cands[I].RegBound != UINT_MAX &&
        !Cands[I].Pruned && !Cands[I].Skipped)
      Kept.push_back(I);
  std::vector<SearchStats> KeptStats(Kept.size());

  // Measures Kept[K] under \p Budget cycles (0 = to completion).
  auto Measure = [&](size_t K, uint64_t Budget) {
    Candidate &C = Cands[Kept[K]];
    // Deterministic cancel point for the simulate phase (see the
    // compile-phase comment); Kept candidates are still unresolved, so
    // skipping is always the right verdict here.
    if (!FaultInjector::instance()
             .check(FaultSite::CancelSimulate,
                    formatString("%d/%d", C.D1, C.D2))
             .ok())
      Opts.Cancel.cancel();
    if (Opts.Cancel.cancelled()) {
      C.Skipped = true;
      return;
    }
    std::string CtxErr;
    SimContext *Ctx = acquireContext(CtxErr);
    if (!Ctx) {
      C.Error = Status(ErrorCode::WorkloadError, CtxErr);
      return;
    }
    telemetry::TraceSpan CandSpan;
    if (telemetry::traceOn())
      CandSpan.beginSpan(
          "simulate",
          C.RegBound ? formatString("c%d %d/%d:r%u", C.Id, C.D1, C.D2,
                                    C.RegBound)
                     : formatString("c%d %d/%d", C.Id, C.D1, C.D2),
          formatString("{\"run\":\"%s\",\"cand\":%d,\"budget\":%llu}",
                       SR.RunId.c_str(), C.Id,
                       static_cast<unsigned long long>(Budget)));
    FusionCandidate FC;
    FC.Id = C.Id;
    FC.D1 = C.D1;
    FC.D2 = C.D2;
    FC.RegBound = C.RegBound;
    Status E;
    FC.Result = runHFusedIn(*Ctx, C.D1, C.D2, C.RegBound, E, &KeptStats[K],
                            Opts.SearchStats, Budget);
    if (FC.Result.Ok) {
      FC.TimeMs = FC.Result.TotalMs;
      FC.Cycles = FC.Result.TotalCycles;
      C.Measured = std::move(FC);
    } else if (FC.Result.Cancelled ||
               (Opts.Cancel.cancelled() && !E.ok() &&
                (E.code() == ErrorCode::Cancelled ||
                 E.code() == ErrorCode::DeadlineExceeded))) {
      // The cancel landed mid-simulation (or mid-compile-wait): the
      // candidate was interrupted, not measured and not at fault —
      // account it as unvisited like the ones never started.
      C.Skipped = true;
    } else if (FC.Result.BudgetExceeded) {
      C.Abandoned = true;
      C.AbandonBudget = Budget;
      C.AbandonIssued = FC.Result.TotalIssued;
    } else if (C.Error.ok())
      // Pipeline failures arrive in E; simulation failures (deadlock,
      // timeout, OOB, verification) are classified off the SimResult.
      C.Error = !E.ok() ? E : statusFromSim(FC.Result);
    releaseContext(Ctx);
  };

  // Unbudgeted search keeps the historical canonical measurement order.
  // Budgeted search reorders phase 3 best-first: candidates are ranked
  // by a lower bound on their cycle count, the front-runner is
  // simulated to completion to seed the incumbent, and everything else
  // runs under CycleBudget = incumbent (margin-readmitted candidates
  // under the tighter incumbent/(1+margin)). Whether a candidate
  // completes or aborts depends only on its own true cycle count
  // against a fixed budget, so results stay deterministic across
  // SearchJobs — and Best is bit-identical to the unbudgeted sweep,
  // because any candidate at or below the incumbent still completes
  // with exact cycles while aborted ones were strictly worse.
  const bool Budgeted = Opts.Budget != SearchBudgetMode::Off;
  const bool Tight = Opts.Budget == SearchBudgetMode::IncumbentTight;
  telemetry::TraceSpan SimPhaseSpan("phase", "simulate");
  uint64_t Incumbent = 0;
  size_t Seeded = 0;
  std::vector<size_t> Order(Kept.size());
  for (size_t I = 0; I < Order.size(); ++I)
    Order[I] = I;
  if (Budgeted && !Kept.empty()) {
    // Occupancy/issue-width lower bound. The grid drains in
    // ceil(Grid / (BlocksPerSM * SimSMs)) occupancy waves, and a wave
    // lasts at least as long as its slower sub-kernel: a warp issues at
    // most one instruction per cycle, and a sub-kernel's per-thread
    // dynamic work scales inversely with its share of the block (the
    // work a block covers is partition-invariant), so the per-block
    // critical path goes as max(Insts1/D1, Insts2/D2) with the input
    // kernels' static instruction counts standing in for their dynamic
    // ratios. Bounded variants additionally inflate every thread by
    // their spill code (fused static count vs the unbounded sibling's)
    // — which ranks the spill-heavy crypto bounds last, exactly the
    // runs worth abandoning. Ties keep canonical order (stable sort).
    const int Grid = commonGrid();
    double S1 = static_cast<double>(K1->IR->numInstructions());
    double S2 = static_cast<double>(K2->IR->numInstructions());
    if (Opts.MeasuredBound) {
      // Rank on each kernel's *measured* dynamic work — one solo
      // simulation per input kernel, the same issued-count quantity
      // exported as the sim.issued.<label> gauges — instead of the
      // static instruction-count proxy. Only the ranking changes (so
      // only which candidate seeds the incumbent); Best is invariant.
      // A failed probe falls back to the static proxy.
      Status SoloErr1, SoloErr2;
      uint64_t I1 = soloIssuedCount(0, SoloErr1, &SR.Stats);
      uint64_t I2 = soloIssuedCount(1, SoloErr2, &SR.Stats);
      if (SoloErr1.ok() && SoloErr2.ok() && I1 != 0 && I2 != 0) {
        S1 = static_cast<double>(I1);
        S2 = static_cast<double>(I2);
      }
    }
    std::vector<double> Bound(Kept.size());
    for (size_t I = 0; I < Kept.size(); ++I) {
      const Candidate &C = Cands[Kept[I]];
      double PerThread = std::max(S1 / C.D1, S2 / C.D2);
      const Candidate *Sib = C.Sibling >= 0 ? &Cands[C.Sibling] : nullptr;
      if (Sib && Sib->IR && Sib->IR != C.IR)
        PerThread *= static_cast<double>(C.IR->numInstructions()) /
                     static_cast<double>(
                         std::max<size_t>(1, Sib->IR->numInstructions()));
      uint64_t BlocksPerWave =
          uint64_t(std::max(1, C.BlocksPerSM)) * Opts.SimSMs;
      uint64_t Waves =
          (uint64_t(Grid) + BlocksPerWave - 1) / BlocksPerWave;
      Bound[I] = static_cast<double>(Waves) * PerThread;
    }
    std::stable_sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
      const Candidate &CA = Cands[Kept[A]], &CB = Cands[Kept[B]];
      // Margin-readmitted candidates are presumed slow: never seed
      // the incumbent from one.
      if (CA.MarginReadmit != CB.MarginReadmit)
        return CB.MarginReadmit;
      return Bound[A] < Bound[B];
    });
    while (Seeded < Order.size()) {
      size_t K = Order[Seeded++];
      Measure(K, 0);
      if (Cands[Kept[K]].Measured) {
        Incumbent = Cands[Kept[K]].Measured->Cycles;
        break;
      }
      // Seed candidate failed outright; try the next-best one.
    }
  }
  auto MarginOf = [&](uint64_t Inc) -> uint64_t {
    return Inc == 0
               ? 0
               : std::max<uint64_t>(
                     1, static_cast<uint64_t>(
                            static_cast<double>(Inc) /
                            (1.0 +
                             std::max(0.0, Opts.BudgetMarginPct) / 100.0)));
  };
  // IncumbentTight: completed candidates publish their cycles into a
  // shared minimum, so later candidates start under the best cycle
  // count seen so far instead of the seed's. Every budget handed out
  // is <= the plain-incumbent budget, and a candidate whose true
  // cycles are <= the eventual Best always completes (its budget is
  // always >= the running minimum >= its own cycles) — so Best stays
  // bit-identical; the ledger is canonicalized after the sweep.
  std::atomic<uint64_t> SharedIncumbent{Incumbent};
  parallelFor(Pool.get(), Kept.size() - Seeded, [&](size_t I) {
    size_t K = Order[Seeded + I];
    uint64_t Budget = 0;
    const uint64_t Inc =
        Tight ? SharedIncumbent.load(std::memory_order_relaxed) : Incumbent;
    if (Budgeted && Inc != 0)
      Budget = Cands[Kept[K]].MarginReadmit ? MarginOf(Inc) : Inc;
    Measure(K, Budget);
    if (Tight && Cands[Kept[K]].Measured) {
      uint64_t Cycles = Cands[Kept[K]].Measured->Cycles;
      uint64_t Cur = SharedIncumbent.load(std::memory_order_relaxed);
      while ((Cur == 0 || Cycles < Cur) &&
             !SharedIncumbent.compare_exchange_weak(
                 Cur, Cycles, std::memory_order_relaxed))
        ;
    }
  });
  SimPhaseSpan.finish();

  if (Tight) {
    // Deterministic reporting for the tightened sweep: which
    // non-winning candidates completed (vs were abandoned) depends on
    // the budget each happened to run under, i.e. on worker timing.
    // Re-issue every kept candidate's verdict under the *final*
    // incumbent, as if the sweep had used it from the start: a
    // measured candidate over its final budget is demoted to
    // Abandoned at that budget (IssuedInsts 0, like a memo-decided
    // abandonment), and every abandonment is normalized the same way.
    // The winner and its exact ties always survive, so Best and All
    // are bit-identical across SearchJobs — only the cost counters
    // (SimulatedInsts/AbandonedInsts) keep reflecting the real,
    // timing-dependent work done.
    Incumbent = SharedIncumbent.load(std::memory_order_relaxed);
    if (Incumbent != 0) {
      const uint64_t FinalMargin = MarginOf(Incumbent);
      for (size_t K : Kept) {
        Candidate &C = Cands[K];
        if (C.Skipped || !C.Error.ok())
          continue;
        const uint64_t FinalBudget =
            C.MarginReadmit ? FinalMargin : Incumbent;
        if (C.Measured && C.Measured->Cycles > FinalBudget) {
          C.Measured.reset();
          C.Abandoned = true;
        }
        if (C.Abandoned) {
          C.AbandonBudget = FinalBudget;
          C.AbandonIssued = 0;
        }
      }
    }
  }

  Status FirstError;
  for (Candidate &C : Cands) {
    // A bounded slot whose partition yielded no r0 is not a candidate
    // (seed behavior) — but a slot cancelled before r0 was computed is
    // one that *would* have existed: count it as unvisited with the
    // bound still pending, so the ledger identity Candidates == All +
    // Pruned + Abandoned + Failed + Unvisited holds on partial runs.
    if (C.RegBound == UINT_MAX && !C.Skipped)
      continue; // partition without a bounded trial
    if (FirstError.ok() && !C.Error.ok())
      FirstError = C.Error;
    ++SR.Stats.Candidates;
    if (C.Skipped) {
      UnvisitedCandidate U;
      U.Id = C.Id;
      U.D1 = C.D1;
      U.D2 = C.D2;
      U.RegBound = C.RegBound == UINT_MAX ? 0 : C.RegBound;
      U.BoundPending = C.RegBound == UINT_MAX;
      SR.Unvisited.push_back(U);
      ++SR.Stats.Unvisited;
      continue;
    }
    if (!C.Error.ok()) {
      // Contained failure: the candidate is retired with its error
      // recorded and the sweep goes on. Recorded in canonical order
      // (this loop), so the report is deterministic across SearchJobs.
      FailedCandidate F;
      F.Id = C.Id;
      F.D1 = C.D1;
      F.D2 = C.D2;
      F.RegBound = C.RegBound;
      F.Err = C.Error;
      SR.Failed.push_back(std::move(F));
      ++SR.Stats.Failed;
      continue;
    }
    if (C.Pruned) {
      PrunedCandidate P;
      P.Id = C.Id;
      P.D1 = C.D1;
      P.D2 = C.D2;
      P.RegBound = C.RegBound;
      P.BlocksPerSM = C.BlocksPerSM;
      P.DominatorBlocksPerSM = C.DominatorBlocksPerSM;
      P.Reason = std::move(C.PruneReason);
      SR.Pruned.push_back(std::move(P));
      ++SR.Stats.Pruned;
    } else if (C.Abandoned) {
      AbandonedCandidate A;
      A.Id = C.Id;
      A.D1 = C.D1;
      A.D2 = C.D2;
      A.RegBound = C.RegBound;
      A.BudgetCycles = C.AbandonBudget;
      A.IssuedInsts = C.AbandonIssued;
      SR.Abandoned.push_back(A);
      ++SR.Stats.Abandoned;
    } else if (C.Measured)
      SR.All.push_back(std::move(*C.Measured));
  }
  for (const SearchStats &S : KeptStats) {
    SR.Stats.Simulations += S.Simulations;
    SR.Stats.MemoHits += S.MemoHits;
    SR.Stats.SimulatedInsts += S.SimulatedInsts;
    SR.Stats.AbandonedInsts += S.AbandonedInsts;
  }
  SR.Partial = SR.Stats.Unvisited > 0;
  if (SR.Partial) {
    SR.PartialReason = Opts.Cancel.status();
    if (SR.PartialReason.ok()) // defensive: Skipped implies a fired token
      SR.PartialReason =
          Status::transient(ErrorCode::Cancelled, "request cancelled");
  }
  SR.Stats.IncumbentCycles = Incumbent;
  SR.Stats.WallMs =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - Start)
          .count();

  // Funnel counters, bumped once per search from the canonical
  // accounting above (deterministic across SearchJobs). Write-only:
  // nothing below ever reads them back.
  if (telemetry::metricsOn()) {
    HFUSE_METRIC_ADD("search.runs", 1);
    HFUSE_METRIC_ADD("search.candidates", SR.Stats.Candidates);
    HFUSE_METRIC_ADD("search.pruned", SR.Stats.Pruned);
    HFUSE_METRIC_ADD("search.abandoned", SR.Stats.Abandoned);
    HFUSE_METRIC_ADD("search.failed", SR.Stats.Failed);
    HFUSE_METRIC_ADD("search.unvisited", SR.Stats.Unvisited);
    if (SR.Partial)
      HFUSE_METRIC_ADD("search.partial", 1);
    HFUSE_METRIC_ADD("search.simulations", SR.Stats.Simulations);
    HFUSE_METRIC_ADD("search.sim_insts", SR.Stats.SimulatedInsts);
    HFUSE_METRIC_ADD("search.abandoned_insts", SR.Stats.AbandonedInsts);
    HFUSE_METRIC_GAUGE_SET("search.incumbent_cycles",
                           SR.Stats.IncumbentCycles);
  }

  if (SR.All.empty()) {
    // A cancel that landed before any measurement has no best-so-far
    // to return: the request verdict (Cancelled/DeadlineExceeded) is
    // the error, not a fusion infeasibility.
    if (SR.Partial)
      SR.Err = SR.PartialReason;
    else
      SR.Err = !FirstError.ok()
                   ? FirstError
                   : Status(ErrorCode::FusionUnsupported,
                            Err.empty() ? "no feasible fusion configuration"
                                        : Err);
    SR.Error = SR.Err.message();
    return SR;
  }
  SR.Best = *std::min_element(
      SR.All.begin(), SR.All.end(),
      [](const FusionCandidate &X, const FusionCandidate &Y) {
        return X.Cycles < Y.Cycles;
      });
  SR.Ok = true;

  // The sweep ranked candidates on timing-only stats; re-profile the
  // winner at Full so Best carries the complete nvprof-style metrics
  // (stall shares, occupancy, traffic). Cycle counts are identical by
  // construction — tests/GoldenSimTest.cpp enforces it.
  // A cancelled request skips the upgrade: the incumbent's minimal
  // stats are already correct, and the re-profile would burn a full
  // simulation after the caller asked us to stop.
  if (Opts.SearchStats != gpusim::StatsLevel::Full &&
      !Opts.Cancel.cancelled()) {
    std::string CtxErr;
    if (SimContext *Ctx = acquireContext(CtxErr)) {
      Status E;
      SimResult R = runHFusedIn(*Ctx, SR.Best.D1, SR.Best.D2,
                                SR.Best.RegBound, E, nullptr,
                                gpusim::StatsLevel::Full);
      releaseContext(Ctx);
      if (R.Ok) {
        SR.Best.Cycles = R.TotalCycles;
        SR.Best.TimeMs = R.TotalMs;
        SR.Best.Result = std::move(R);
      }
    }
  }
  return SR;
}

std::string PairRunner::fusedSource(int D1, int D2) {
  if (!Ready)
    return "";
  cuda::ASTContext Ctx;
  DiagnosticEngine Diags;
  transform::HorizontalFusionOptions HO;
  HO.D1 = D1;
  HO.D2 = D2;
  HO.Y1 = Primary.W1->preferredBlockY();
  HO.Y2 = Primary.W2->preferredBlockY();
  transform::FusionResult FR =
      transform::fuseHorizontal(Ctx, K1->fn(), K2->fn(), HO, Diags);
  if (!FR.Ok)
    return "";
  return cuda::printFunction(FR.Fused);
}
