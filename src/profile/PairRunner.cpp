//===-- profile/PairRunner.cpp - Benchmark-pair experiment driver ---------===//
//
// Part of the HFuse reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "profile/PairRunner.h"

#include "cudalang/ASTPrinter.h"
#include "support/StringUtils.h"
#include "ir/RegAlloc.h"
#include "transform/Fusion.h"

#include <climits>

#include <algorithm>

using namespace hfuse;
using namespace hfuse::gpusim;
using namespace hfuse::kernels;
using namespace hfuse::profile;

PairRunner::PairRunner(BenchKernelId A, BenchKernelId B, Options Opts)
    : IdA(A), IdB(B), Opts(std::move(Opts)) {
  DiagnosticEngine Diags;
  K1 = compileBenchKernel(A, /*RegBound=*/0, Diags);
  K2 = compileBenchKernel(B, /*RegBound=*/0, Diags);
  if (!K1 || !K2) {
    Err = "kernel compilation failed:\n" + Diags.str();
    return;
  }

  WorkloadConfig C1;
  C1.SizeScale = this->Opts.Scale1;
  C1.SimSMs = this->Opts.SimSMs;
  C1.Seed = this->Opts.Seed;
  WorkloadConfig C2 = C1;
  C2.SizeScale = this->Opts.Scale2;
  C2.Seed = this->Opts.Seed + 1;
  W1 = makeWorkload(A, C1);
  W2 = makeWorkload(B, C2);

  SimConfig SC;
  SC.Arch = this->Opts.Arch;
  SC.SimSMs = this->Opts.SimSMs;
  SC.ModelL2 = this->Opts.ModelL2;
  Sim = std::make_unique<Simulator>(SC);
  W1->setup(*Sim);
  W2->setup(*Sim);
  Ready = true;
}

unsigned PairRunner::soloRegs(int Which) const {
  return (Which == 0 ? K1 : K2)->IR->ArchRegsPerThread;
}

int PairRunner::commonGrid() const {
  return std::max(W1->preferredGrid(), W2->preferredGrid());
}

SimResult PairRunner::fail(const std::string &Message) const {
  SimResult R;
  R.Error = Message;
  return R;
}

SimResult PairRunner::runLaunches(
    const std::vector<KernelLaunch> &Launches, int Threads1, int Threads2) {
  W1->clearOutputs(*Sim);
  W2->clearOutputs(*Sim);
  SimResult R = Sim->run(Launches);
  if (!R.Ok)
    return R;
  if (Opts.Verify) {
    std::string VerifyErr;
    if (Threads1 > 0 && !W1->verify(*Sim, Threads1, VerifyErr)) {
      R.Ok = false;
      R.Error = "verification failed: " + VerifyErr;
      return R;
    }
    if (Threads2 > 0 && !W2->verify(*Sim, Threads2, VerifyErr)) {
      R.Ok = false;
      R.Error = "verification failed: " + VerifyErr;
      return R;
    }
  }
  return R;
}

SimResult PairRunner::runNative() {
  if (!Ready)
    return fail(Err);
  KernelLaunch L1;
  L1.Kernel = K1->IR.get();
  L1.GridDim = W1->preferredGrid();
  L1.BlockDim = W1->preferredBlock();
  L1.BlockDimY = W1->preferredBlockY();
  L1.DynSharedBytes = W1->dynSharedBytes();
  L1.Params = W1->params();
  L1.Label = kernelDisplayName(IdA);
  KernelLaunch L2;
  L2.Kernel = K2->IR.get();
  L2.GridDim = W2->preferredGrid();
  L2.BlockDim = W2->preferredBlock();
  L2.BlockDimY = W2->preferredBlockY();
  L2.DynSharedBytes = W2->dynSharedBytes();
  L2.Params = W2->params();
  L2.Label = kernelDisplayName(IdB);
  return runLaunches({L1, L2}, L1.GridDim * W1->preferredBlockThreads(),
                     L2.GridDim * W2->preferredBlockThreads());
}

SimResult PairRunner::runSolo(int Which) {
  if (!Ready)
    return fail(Err);
  Workload *W = Which == 0 ? W1.get() : W2.get();
  CompiledKernel *K = Which == 0 ? K1.get() : K2.get();
  KernelLaunch L;
  L.Kernel = K->IR.get();
  L.GridDim = W->preferredGrid();
  L.BlockDim = W->preferredBlock();
  L.BlockDimY = W->preferredBlockY();
  L.DynSharedBytes = W->dynSharedBytes();
  L.Params = W->params();
  L.Label = kernelDisplayName(Which == 0 ? IdA : IdB);
  int Total = L.GridDim * W->preferredBlockThreads();
  return runLaunches({L}, Which == 0 ? Total : 0, Which == 1 ? Total : 0);
}

SimResult PairRunner::runVFused() {
  if (!Ready)
    return fail(Err);
  if (!VFused) {
    DiagnosticEngine Diags;
    auto Entry = std::make_unique<CompiledKernel>();
    auto Ctx = std::make_unique<cuda::ASTContext>();
    transform::FusionResult FR = transform::fuseVertical(
        *Ctx, K1->fn(), K2->fn(), /*FusedName=*/"", Diags);
    if (!FR.Ok)
      return fail("vertical fusion failed:\n" + Diags.str());
    auto IR = lowerFunction(*Ctx, FR.Fused, /*RegBound=*/0, Diags);
    if (!IR)
      return fail("vertical fusion lowering failed:\n" + Diags.str());
    VFused = std::make_unique<CompiledKernel>();
    VFused->Pre = std::make_unique<transform::PreprocessedKernel>();
    VFused->Pre->Ctx = std::move(Ctx);
    VFused->Pre->Kernel = FR.Fused;
    VFused->IR = std::move(IR);
    VFusedDynShared = W1->dynSharedBytes() + W2->dynSharedBytes();
  }
  KernelLaunch L;
  L.Kernel = VFused->IR.get();
  int Grid = commonGrid();
  L.GridDim = Grid;
  L.BlockDim = 256;
  L.DynSharedBytes = VFusedDynShared;
  L.Params = W1->params();
  L.Params.insert(L.Params.end(), W2->params().begin(), W2->params().end());
  L.Label = formatString("VFuse(%s+%s)", kernelDisplayName(IdA),
                         kernelDisplayName(IdB));
  return runLaunches({L}, Grid * 256, Grid * 256);
}

PairRunner::FusedEntry *PairRunner::getFused(int D1, int D2,
                                             unsigned RegBound) {
  auto Key = std::make_tuple(D1, D2, RegBound);
  auto It = FusedCache.find(Key);
  if (It != FusedCache.end())
    return It->second.IR ? &It->second : nullptr;

  FusedEntry &Entry = FusedCache[Key];
  DiagnosticEngine Diags;
  Entry.Ctx = std::make_unique<cuda::ASTContext>();
  transform::HorizontalFusionOptions HO;
  HO.D1 = D1;
  HO.D2 = D2;
  HO.Y1 = W1->preferredBlockY();
  HO.Y2 = W2->preferredBlockY();
  HO.UsePartialBarriers = Opts.UsePartialBarriers;
  transform::FusionResult FR =
      transform::fuseHorizontal(*Entry.Ctx, K1->fn(), K2->fn(), HO, Diags);
  if (!FR.Ok) {
    Err = "horizontal fusion failed:\n" + Diags.str();
    return nullptr;
  }
  Entry.IR = lowerFunction(*Entry.Ctx, FR.Fused, RegBound, Diags);
  if (!Entry.IR) {
    Err = "fused kernel lowering failed:\n" + Diags.str();
    return nullptr;
  }
  Entry.DynShared = W1->dynSharedBytes() + W2->dynSharedBytes();
  return &Entry;
}

SimResult PairRunner::runHFused(int D1, int D2, unsigned RegBound) {
  if (!Ready)
    return fail(Err);
  FusedEntry *Entry = getFused(D1, D2, RegBound);
  if (!Entry)
    return fail(Err);
  KernelLaunch L;
  L.Kernel = Entry->IR.get();
  int Grid = commonGrid();
  L.GridDim = Grid;
  L.BlockDim = D1 + D2;
  L.DynSharedBytes = Entry->DynShared;
  L.Params = W1->params();
  L.Params.insert(L.Params.end(), W2->params().begin(), W2->params().end());
  L.Label = formatString("HFuse(%s+%s,%d/%d%s)", kernelDisplayName(IdA),
                         kernelDisplayName(IdB), D1, D2,
                         RegBound ? formatString(",r%u", RegBound).c_str()
                                  : "");
  return runLaunches({L}, Grid * D1, Grid * D2);
}

std::optional<unsigned> PairRunner::figure6RegBound(int D1, int D2) {
  const GpuArch &A = Opts.Arch;
  unsigned NRegs1 = K1->IR->ArchRegsPerThread;
  unsigned NRegs2 = K2->IR->ArchRegsPerThread;
  int D0 = D1 + D2;

  // b1/b2: register-limited concurrent blocks of the original kernels.
  long B1 = A.RegsPerSM / (static_cast<long>(D1) * NRegs1);
  long B2 = A.RegsPerSM / (static_cast<long>(D2) * NRegs2);
  if (B1 < 1 || B2 < 1)
    return std::nullopt;

  // Shared memory of the fused kernel.
  FusedEntry *Entry = getFused(D1, D2, /*RegBound=*/0);
  if (!Entry)
    return std::nullopt;
  uint32_t ShMem = Entry->IR->StaticSharedBytes + Entry->DynShared;
  long BShMem = ShMem > 0 ? A.SharedMemPerSM / ShMem : LONG_MAX;
  long BThreads = A.MaxThreadsPerSM / D0;

  long B0 = std::min({B1, B2, BShMem, BThreads});
  if (B0 < 1)
    return std::nullopt;

  long R0 = A.RegsPerSM / (B0 * D0);
  R0 = std::min<long>(R0, A.MaxRegsPerThread);
  // Below this there is no room for even the spill scratch registers.
  long MinUseful = ir::RegOverhead + ir::SpillScratchRegs * 2 + 8;
  if (R0 < MinUseful)
    return std::nullopt;
  return static_cast<unsigned>(R0);
}

SearchResult PairRunner::searchBestConfig(bool NaiveEvenSplit) {
  SearchResult SR;
  if (!Ready) {
    SR.Error = Err;
    return SR;
  }

  bool Tunable = kernelHasTunableBlockDim(IdA) &&
                 kernelHasTunableBlockDim(IdB);
  int D0 = Tunable
               ? 1024
               : W1->preferredBlockThreads() + W2->preferredBlockThreads();

  // A partition must be divisible by the kernel's fixed .y extent so its
  // threads form whole rows of the original block shape.
  auto Feasible = [&](int D1) {
    return D1 % W1->preferredBlockY() == 0 &&
           (D0 - D1) % W2->preferredBlockY() == 0;
  };

  std::vector<int> Partitions;
  if (!Tunable || NaiveEvenSplit) {
    if (Feasible(D0 / 2))
      Partitions.push_back(D0 / 2);
  } else {
    for (int D1 = 128; D1 < D0; D1 += 128)
      if (Feasible(D1))
        Partitions.push_back(D1);
  }

  for (int D1 : Partitions) {
    int D2 = D0 - D1;
    FusionCandidate Cand;
    Cand.D1 = D1;
    Cand.D2 = D2;
    Cand.RegBound = 0;
    Cand.Result = runHFused(D1, D2, 0);
    if (Cand.Result.Ok) {
      Cand.TimeMs = Cand.Result.TotalMs;
      Cand.Cycles = Cand.Result.TotalCycles;
      SR.All.push_back(Cand);
    }

    if (NaiveEvenSplit)
      continue;
    std::optional<unsigned> R0 = figure6RegBound(D1, D2);
    if (!R0)
      continue;
    FusionCandidate CandB;
    CandB.D1 = D1;
    CandB.D2 = D2;
    CandB.RegBound = *R0;
    CandB.Result = runHFused(D1, D2, *R0);
    if (CandB.Result.Ok) {
      CandB.TimeMs = CandB.Result.TotalMs;
      CandB.Cycles = CandB.Result.TotalCycles;
      SR.All.push_back(CandB);
    }
  }

  if (SR.All.empty()) {
    SR.Error = Err.empty() ? "no feasible fusion configuration" : Err;
    return SR;
  }
  SR.Best = *std::min_element(
      SR.All.begin(), SR.All.end(),
      [](const FusionCandidate &X, const FusionCandidate &Y) {
        return X.Cycles < Y.Cycles;
      });
  SR.Ok = true;
  return SR;
}

std::string PairRunner::fusedSource(int D1, int D2) {
  if (!Ready)
    return "";
  cuda::ASTContext Ctx;
  DiagnosticEngine Diags;
  transform::HorizontalFusionOptions HO;
  HO.D1 = D1;
  HO.D2 = D2;
  HO.Y1 = W1->preferredBlockY();
  HO.Y2 = W2->preferredBlockY();
  transform::FusionResult FR =
      transform::fuseHorizontal(Ctx, K1->fn(), K2->fn(), HO, Diags);
  if (!FR.Ok)
    return "";
  return cuda::printFunction(FR.Fused);
}
