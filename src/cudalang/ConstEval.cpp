//===-- cudalang/ConstEval.cpp - Integer constant folding -----------------===//
//
// Part of the HFuse reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "cudalang/ConstEval.h"

#include "cudalang/AST.h"

using namespace hfuse;
using namespace hfuse::cuda;

std::optional<int64_t> hfuse::cuda::evalConstInt(const Expr *E) {
  switch (E->kind()) {
  case StmtKind::IntLiteral:
    return static_cast<int64_t>(cast<IntLiteralExpr>(E)->value());
  case StmtKind::BoolLiteral:
    return cast<BoolLiteralExpr>(E)->value() ? 1 : 0;
  case StmtKind::Paren:
    return evalConstInt(cast<ParenExpr>(E)->sub());
  case StmtKind::Cast: {
    const auto *C = cast<CastExpr>(E);
    if (C->destType() && C->destType()->isFloating())
      return std::nullopt;
    return evalConstInt(C->sub());
  }
  case StmtKind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    auto Sub = evalConstInt(U->sub());
    if (!Sub)
      return std::nullopt;
    switch (U->op()) {
    case UnaryOpKind::Plus:
      return *Sub;
    case UnaryOpKind::Minus:
      return -*Sub;
    case UnaryOpKind::BitNot:
      return ~*Sub;
    case UnaryOpKind::LogicalNot:
      return *Sub == 0 ? 1 : 0;
    default:
      return std::nullopt;
    }
  }
  case StmtKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    auto L = evalConstInt(B->lhs());
    auto R = evalConstInt(B->rhs());
    if (!L || !R)
      return std::nullopt;
    switch (B->op()) {
    case BinaryOpKind::Add:
      return *L + *R;
    case BinaryOpKind::Sub:
      return *L - *R;
    case BinaryOpKind::Mul:
      return *L * *R;
    case BinaryOpKind::Div:
      if (*R == 0)
        return std::nullopt;
      return *L / *R;
    case BinaryOpKind::Rem:
      if (*R == 0)
        return std::nullopt;
      return *L % *R;
    case BinaryOpKind::Shl:
      if (*R < 0 || *R >= 64)
        return std::nullopt;
      return static_cast<int64_t>(static_cast<uint64_t>(*L) << *R);
    case BinaryOpKind::Shr:
      if (*R < 0 || *R >= 64)
        return std::nullopt;
      return *L >> *R;
    case BinaryOpKind::BitAnd:
      return *L & *R;
    case BinaryOpKind::BitOr:
      return *L | *R;
    case BinaryOpKind::BitXor:
      return *L ^ *R;
    case BinaryOpKind::Lt:
      return *L < *R;
    case BinaryOpKind::Gt:
      return *L > *R;
    case BinaryOpKind::Le:
      return *L <= *R;
    case BinaryOpKind::Ge:
      return *L >= *R;
    case BinaryOpKind::Eq:
      return *L == *R;
    case BinaryOpKind::Ne:
      return *L != *R;
    case BinaryOpKind::LogicalAnd:
      return (*L != 0 && *R != 0) ? 1 : 0;
    case BinaryOpKind::LogicalOr:
      return (*L != 0 || *R != 0) ? 1 : 0;
    default:
      return std::nullopt;
    }
  }
  case StmtKind::Conditional: {
    const auto *C = cast<ConditionalExpr>(E);
    auto Cond = evalConstInt(C->cond());
    if (!Cond)
      return std::nullopt;
    return evalConstInt(*Cond != 0 ? C->trueExpr() : C->falseExpr());
  }
  default:
    return std::nullopt;
  }
}
