//===-- cudalang/ASTCloner.h - Deep AST cloning -----------------*- C++ -*-===//
//
// Part of the HFuse reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deep-clones CuLite subtrees, possibly across ASTContexts. The fusion
/// passes use it to move both input kernels into one fresh context; the
/// inliner uses it to splice device-function bodies with parameters
/// substituted by argument expressions.
///
/// Cloning deliberately drops Sema results: implicit casts are stripped
/// (cloned through), expression types are left null, and goto targets are
/// unresolved. Run Sema on the resulting function before using it.
///
//===----------------------------------------------------------------------===//

#ifndef HFUSE_CUDALANG_ASTCLONER_H
#define HFUSE_CUDALANG_ASTCLONER_H

#include "cudalang/AST.h"

#include <map>

namespace hfuse::cuda {

class ASTCloner {
public:
  /// Clones into \p Target. Source nodes may live in a different context.
  explicit ASTCloner(ASTContext &Target) : Target(Target) {}

  /// Future references to \p From become references to \p To.
  void mapDecl(const VarDecl *From, VarDecl *To) { DeclMap[From] = To; }

  /// Future references to \p From are replaced by fresh clones of
  /// \p Replacement (which must already live in the target context).
  /// Used by the inliner to substitute arguments for parameters.
  void mapDeclToExpr(const VarDecl *From, const Expr *Replacement) {
    ExprMap[From] = Replacement;
  }

  /// Clones a variable declaration and registers the From->To mapping.
  VarDecl *cloneVar(const VarDecl *V);

  /// Clones a whole function (params, body). The clone keeps the original
  /// name unless \p NewName is non-empty.
  FunctionDecl *cloneFunction(const FunctionDecl *F,
                              const std::string &NewName = "");

  Stmt *cloneStmt(const Stmt *S);
  Expr *cloneExpr(const Expr *E);

  /// Translates a type from any TypeContext into the target's.
  const Type *translateType(const Type *Ty);

private:
  ASTContext &Target;
  std::map<const VarDecl *, VarDecl *> DeclMap;
  std::map<const VarDecl *, const Expr *> ExprMap;
};

} // namespace hfuse::cuda

#endif // HFUSE_CUDALANG_ASTCLONER_H
