//===-- cudalang/Type.cpp - CuLite type system ----------------------------===//
//
// Part of the HFuse reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "cudalang/Type.h"

using namespace hfuse::cuda;

unsigned Type::bitWidth() const {
  switch (Kind) {
  case TypeKind::Bool:
  case TypeKind::Char:
  case TypeKind::UChar:
    return 8;
  case TypeKind::Int:
  case TypeKind::UInt:
  case TypeKind::Float:
    return 32;
  case TypeKind::Long:
  case TypeKind::ULong:
  case TypeKind::Double:
  case TypeKind::Pointer:
    return 64;
  case TypeKind::Void:
  case TypeKind::Array:
    break;
  }
  assert(false && "type has no bit width");
  return 0;
}

uint64_t Type::storeSize() const {
  if (isArray())
    return element()->storeSize() * NumElems;
  return bitWidth() / 8;
}

std::string Type::str() const {
  switch (Kind) {
  case TypeKind::Void:
    return "void";
  case TypeKind::Bool:
    return "bool";
  case TypeKind::Char:
    return "char";
  case TypeKind::UChar:
    return "unsigned char";
  case TypeKind::Int:
    return "int";
  case TypeKind::UInt:
    return "unsigned int";
  case TypeKind::Long:
    return "long long";
  case TypeKind::ULong:
    return "unsigned long long";
  case TypeKind::Float:
    return "float";
  case TypeKind::Double:
    return "double";
  case TypeKind::Pointer:
    return Elem->str() + " *";
  case TypeKind::Array:
    if (NumElems == 0)
      return Elem->str() + " []";
    return Elem->str() + " [" + std::to_string(NumElems) + "]";
  }
  return "<invalid>";
}

TypeContext::TypeContext() {
  Scalars.reserve(size_t(TypeKind::Double) + 1);
  for (size_t K = 0; K <= size_t(TypeKind::Double); ++K)
    Scalars.push_back(Type(TypeKind(K), nullptr, 0));
}

const Type *TypeContext::pointerTo(const Type *Elem) {
  auto It = Pointers.find(Elem);
  if (It != Pointers.end())
    return It->second.get();
  auto Ty =
      std::unique_ptr<Type>(new Type(TypeKind::Pointer, Elem, /*NumElems=*/0));
  const Type *Raw = Ty.get();
  Pointers.emplace(Elem, std::move(Ty));
  return Raw;
}

const Type *TypeContext::arrayOf(const Type *Elem, uint64_t NumElems) {
  auto Key = std::make_pair(Elem, NumElems);
  auto It = Arrays.find(Key);
  if (It != Arrays.end())
    return It->second.get();
  auto Ty = std::unique_ptr<Type>(new Type(TypeKind::Array, Elem, NumElems));
  const Type *Raw = Ty.get();
  Arrays.emplace(Key, std::move(Ty));
  return Raw;
}
