//===-- cudalang/Parser.h - CuLite parser -----------------------*- C++ -*-===//
//
// Part of the HFuse reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the CuLite dialect. Produces an AST in an
/// ASTContext; run Sema afterwards to resolve names and compute types.
///
/// Because CuLite has no user-defined types, a statement is a declaration
/// iff it starts with a type keyword or a declaration qualifier, which
/// keeps the grammar LL(2).
///
//===----------------------------------------------------------------------===//

#ifndef HFUSE_CUDALANG_PARSER_H
#define HFUSE_CUDALANG_PARSER_H

#include "cudalang/AST.h"
#include "cudalang/Lexer.h"
#include "support/Diagnostics.h"

namespace hfuse::cuda {

class Parser {
public:
  Parser(std::string_view Source, ASTContext &Ctx, DiagnosticEngine &Diags);

  /// Parses the whole buffer into the context's translation unit.
  /// Returns false if any syntax error was reported.
  bool parseTranslationUnit();

private:
  // Token stream management with one token of lookahead.
  const Token &cur() const { return Tok; }
  const Token &ahead() const { return NextTok; }
  void consume();
  bool expect(TokenKind Kind, const char *Context);
  bool consumeIf(TokenKind Kind);

  // Types.
  bool startsType(const Token &T) const;
  bool startsDeclaration() const;
  const Type *parseTypeSpecifier();
  const Type *parsePointerSuffix(const Type *Base);

  // Declarations.
  FunctionDecl *parseFunction();
  VarDecl *parseParam();
  DeclStmt *parseDeclStmt(bool Shared, bool ExternShared);

  // Statements.
  Stmt *parseStatement();
  CompoundStmt *parseCompound();
  Stmt *parseIf();
  Stmt *parseFor();
  Stmt *parseWhile();
  Stmt *parseAsm();

  // Expressions (precedence climbing).
  Expr *parseExpression(); // includes comma
  Expr *parseAssignment();
  Expr *parseConditional();
  Expr *parseBinaryRHS(int MinPrec, Expr *LHS);
  Expr *parseUnary();
  Expr *parsePostfix(Expr *Base);
  Expr *parsePrimary();

  ASTContext &Ctx;
  DiagnosticEngine &Diags;
  Lexer Lex;
  Token Tok;
  Token NextTok;
};

} // namespace hfuse::cuda

#endif // HFUSE_CUDALANG_PARSER_H
