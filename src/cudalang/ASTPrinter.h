//===-- cudalang/ASTPrinter.h - CuLite source printer -----------*- C++ -*-===//
//
// Part of the HFuse reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pretty-prints CuLite ASTs back to CUDA-style source. The output is
/// re-parseable by Parser (round-trip tested), which is what makes HFuse a
/// genuine source-to-source compiler: the fused kernel is emitted as
/// ordinary CUDA text. Implicit casts inserted by Sema are not printed;
/// explicit parentheses are preserved and extra ones are added whenever
/// operator precedence requires them for generated nodes.
///
//===----------------------------------------------------------------------===//

#ifndef HFUSE_CUDALANG_ASTPRINTER_H
#define HFUSE_CUDALANG_ASTPRINTER_H

#include "cudalang/AST.h"

#include <string>

namespace hfuse::cuda {

/// Prints one function definition (attribute, signature, body).
std::string printFunction(const FunctionDecl *F);

/// Prints every function in the translation unit separated by blank lines.
std::string printTranslationUnit(const TranslationUnit &TU);

/// Prints a single statement subtree at the given indent level (two
/// spaces per level). Used by tests and debugging.
std::string printStmt(const Stmt *S, unsigned Indent = 0);

/// Prints one expression.
std::string printExpr(const Expr *E);

/// Prints a declaration in declarator form, e.g. "float *out" or
/// "__shared__ int partial[64]" (without a trailing semicolon or
/// initializer).
std::string printVarDecl(const VarDecl *V);

} // namespace hfuse::cuda

#endif // HFUSE_CUDALANG_ASTPRINTER_H
