//===-- cudalang/Type.h - CuLite type system --------------------*- C++ -*-===//
//
// Part of the HFuse reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The CuLite type system: scalar types (bool, 8/32/64-bit integers,
/// float, double), pointers, and arrays. Types are immutable and interned
/// in a TypeContext, so pointer equality is type equality.
///
//===----------------------------------------------------------------------===//

#ifndef HFUSE_CUDALANG_TYPE_H
#define HFUSE_CUDALANG_TYPE_H

#include <cassert>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace hfuse::cuda {

enum class TypeKind : uint8_t {
  Void,
  Bool,
  Char,  // 8-bit signed; used for byte buffers (e.g. extern shared)
  UChar, // 8-bit unsigned
  Int,   // 32-bit signed
  UInt,  // 32-bit unsigned
  Long,  // 64-bit signed (long long)
  ULong, // 64-bit unsigned (unsigned long long)
  Float,
  Double,
  Pointer,
  Array,
};

/// An interned CuLite type. Instances are created through TypeContext only.
class Type {
public:
  TypeKind kind() const { return Kind; }

  bool isVoid() const { return Kind == TypeKind::Void; }
  bool isBool() const { return Kind == TypeKind::Bool; }
  bool isInteger() const {
    return Kind == TypeKind::Char || Kind == TypeKind::UChar ||
           Kind == TypeKind::Int || Kind == TypeKind::UInt ||
           Kind == TypeKind::Long || Kind == TypeKind::ULong;
  }
  bool isSignedInteger() const {
    return Kind == TypeKind::Char || Kind == TypeKind::Int ||
           Kind == TypeKind::Long;
  }
  bool isUnsignedInteger() const {
    return Kind == TypeKind::UChar || Kind == TypeKind::UInt ||
           Kind == TypeKind::ULong;
  }
  bool isFloating() const {
    return Kind == TypeKind::Float || Kind == TypeKind::Double;
  }
  bool isArithmetic() const { return isInteger() || isFloating() || isBool(); }
  bool isScalar() const { return isArithmetic() || isPointer(); }
  bool isPointer() const { return Kind == TypeKind::Pointer; }
  bool isArray() const { return Kind == TypeKind::Array; }

  /// Element type of a pointer or array.
  const Type *element() const {
    assert((isPointer() || isArray()) && "type has no element");
    return Elem;
  }

  /// Number of elements of a sized array; unsized (extern shared) arrays
  /// report 0.
  uint64_t arraySize() const {
    assert(isArray() && "not an array type");
    return NumElems;
  }
  bool isUnsizedArray() const { return isArray() && NumElems == 0; }

  /// Size in bits of a scalar value of this type (bool counts as 8).
  unsigned bitWidth() const;

  /// Size in bytes when stored in memory (pointers are 8 bytes).
  uint64_t storeSize() const;

  /// C-like rendering, e.g. "unsigned int", "float *", "int [64]".
  std::string str() const;

private:
  friend class TypeContext;
  Type(TypeKind Kind, const Type *Elem, uint64_t NumElems)
      : Kind(Kind), Elem(Elem), NumElems(NumElems) {}

  TypeKind Kind;
  const Type *Elem = nullptr;
  uint64_t NumElems = 0;
};

/// Owns and interns all Type instances for one AST.
class TypeContext {
public:
  TypeContext();
  TypeContext(const TypeContext &) = delete;
  TypeContext &operator=(const TypeContext &) = delete;

  const Type *voidTy() const { return &Scalars[size_t(TypeKind::Void)]; }
  const Type *boolTy() const { return &Scalars[size_t(TypeKind::Bool)]; }
  const Type *charTy() const { return &Scalars[size_t(TypeKind::Char)]; }
  const Type *ucharTy() const { return &Scalars[size_t(TypeKind::UChar)]; }
  const Type *intTy() const { return &Scalars[size_t(TypeKind::Int)]; }
  const Type *uintTy() const { return &Scalars[size_t(TypeKind::UInt)]; }
  const Type *longTy() const { return &Scalars[size_t(TypeKind::Long)]; }
  const Type *ulongTy() const { return &Scalars[size_t(TypeKind::ULong)]; }
  const Type *floatTy() const { return &Scalars[size_t(TypeKind::Float)]; }
  const Type *doubleTy() const { return &Scalars[size_t(TypeKind::Double)]; }

  const Type *scalar(TypeKind Kind) const {
    assert(Kind <= TypeKind::Double && "not a scalar kind");
    return &Scalars[size_t(Kind)];
  }

  const Type *pointerTo(const Type *Elem);
  /// \p NumElems of 0 makes an unsized array (extern __shared__ x[]).
  const Type *arrayOf(const Type *Elem, uint64_t NumElems);

private:
  std::vector<Type> Scalars;
  std::map<const Type *, std::unique_ptr<Type>> Pointers;
  std::map<std::pair<const Type *, uint64_t>, std::unique_ptr<Type>> Arrays;
};

} // namespace hfuse::cuda

#endif // HFUSE_CUDALANG_TYPE_H
