//===-- cudalang/Lexer.h - CuLite lexer -------------------------*- C++ -*-===//
//
// Part of the HFuse reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-rolled lexer for the CuLite dialect. Handles C and C++ comments,
/// integer/float literal suffixes, hex literals, string literals (used by
/// inline asm), and the CUDA attribute keywords.
///
//===----------------------------------------------------------------------===//

#ifndef HFUSE_CUDALANG_LEXER_H
#define HFUSE_CUDALANG_LEXER_H

#include "cudalang/Token.h"
#include "support/Diagnostics.h"

#include <string_view>

namespace hfuse::cuda {

/// Produces a token stream from one in-memory source buffer. The buffer
/// must outlive all tokens (token text is a view into it).
class Lexer {
public:
  Lexer(std::string_view Source, DiagnosticEngine &Diags);

  /// Lexes and returns the next token; returns an Eof token at the end of
  /// input (and forever after).
  Token next();

private:
  char peek(unsigned Ahead = 0) const;
  char advance();
  bool match(char Expected);
  void skipWhitespaceAndComments();
  SourceLocation location() const { return SourceLocation(Line, Column); }

  Token makeToken(TokenKind Kind, size_t Begin, SourceLocation Loc);
  Token lexIdentifierOrKeyword(SourceLocation Loc);
  Token lexNumber(SourceLocation Loc);
  Token lexString(SourceLocation Loc);

  std::string_view Source;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Column = 1;
};

} // namespace hfuse::cuda

#endif // HFUSE_CUDALANG_LEXER_H
