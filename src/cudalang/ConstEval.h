//===-- cudalang/ConstEval.h - Integer constant folding ---------*- C++ -*-===//
//
// Part of the HFuse reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Syntactic integer constant-expression evaluation, used for shared-array
/// sizes (e.g. `__shared__ int s[2 * 2 * 32 + 32]`) and for the fusion
/// passes when they reason about barrier operands.
///
//===----------------------------------------------------------------------===//

#ifndef HFUSE_CUDALANG_CONSTEVAL_H
#define HFUSE_CUDALANG_CONSTEVAL_H

#include <cstdint>
#include <optional>

namespace hfuse::cuda {

class Expr;

/// Evaluates \p E as an integer constant expression. Handles integer and
/// bool literals, parentheses, casts between integer types, unary + - ~ !,
/// binary arithmetic/shift/bit/comparison operators, and ?:. Returns
/// std::nullopt for anything else (declrefs, calls, floats).
std::optional<int64_t> evalConstInt(const Expr *E);

} // namespace hfuse::cuda

#endif // HFUSE_CUDALANG_CONSTEVAL_H
