//===-- cudalang/Sema.h - CuLite semantic analysis --------------*- C++ -*-===//
//
// Part of the HFuse reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic analysis for CuLite: scoped name resolution, goto-label
/// resolution, type checking with C-like usual arithmetic conversions
/// (materialized as implicit CastExpr nodes), array-to-pointer decay, and
/// intrinsic signature checking.
///
/// Sema may be re-run on trees produced by the fusion passes; it rebinds
/// DeclRefs by name. It must only run on trees without pre-existing
/// implicit casts (ASTCloner strips them for exactly this reason).
///
//===----------------------------------------------------------------------===//

#ifndef HFUSE_CUDALANG_SEMA_H
#define HFUSE_CUDALANG_SEMA_H

#include "cudalang/AST.h"
#include "support/Diagnostics.h"

#include <map>
#include <string>
#include <vector>

namespace hfuse::cuda {

class Sema {
public:
  Sema(ASTContext &Ctx, DiagnosticEngine &Diags) : Ctx(Ctx), Diags(Diags) {}

  /// Analyzes every function in the translation unit. Returns false if
  /// errors were reported.
  bool run();

  /// Analyzes a single function (used after fusion).
  bool runOnFunction(FunctionDecl *F);

private:
  // Scope handling.
  void pushScope();
  void popScope();
  bool declare(VarDecl *D);
  VarDecl *lookup(const std::string &Name) const;

  // Statements.
  void visitStmt(Stmt *S);
  void visitCompound(CompoundStmt *S);
  void visitDeclStmt(DeclStmt *S);

  // Expressions. Each visit returns the possibly rewritten node (implicit
  // casts wrap operands); callers must store the result back.
  Expr *visitExpr(Expr *E);
  Expr *visitDeclRef(DeclRefExpr *E);
  Expr *visitUnary(UnaryExpr *E);
  Expr *visitBinary(BinaryExpr *E);
  Expr *visitConditional(ConditionalExpr *E);
  Expr *visitCall(CallExpr *E);
  Expr *visitCast(CastExpr *E);
  Expr *visitIndex(IndexExpr *E);

  // Conversion helpers.
  Expr *decay(Expr *E);
  Expr *implicitConvert(Expr *E, const Type *To);
  const Type *usualArithmeticType(const Type *L, const Type *R) const;
  const Type *promote(const Type *T) const;
  bool checkScalarCondition(Expr *E, const char *What);

  // Label resolution.
  void collectLabels(Stmt *S);
  void resolveGotos(Stmt *S);

  ASTContext &Ctx;
  DiagnosticEngine &Diags;
  FunctionDecl *CurFn = nullptr;
  std::vector<std::map<std::string, VarDecl *>> Scopes;
  std::map<std::string, LabelStmt *> Labels;
  int LoopDepth = 0;
};

} // namespace hfuse::cuda

#endif // HFUSE_CUDALANG_SEMA_H
