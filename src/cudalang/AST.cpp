//===-- cudalang/AST.cpp - CuLite abstract syntax tree --------------------===//
//
// Part of the HFuse reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "cudalang/AST.h"

using namespace hfuse;
using namespace hfuse::cuda;

bool hfuse::cuda::isAssignmentOp(BinaryOpKind Op) {
  switch (Op) {
  case BinaryOpKind::Assign:
  case BinaryOpKind::AddAssign:
  case BinaryOpKind::SubAssign:
  case BinaryOpKind::MulAssign:
  case BinaryOpKind::DivAssign:
  case BinaryOpKind::RemAssign:
  case BinaryOpKind::ShlAssign:
  case BinaryOpKind::ShrAssign:
  case BinaryOpKind::AndAssign:
  case BinaryOpKind::XorAssign:
  case BinaryOpKind::OrAssign:
    return true;
  default:
    return false;
  }
}

BinaryOpKind hfuse::cuda::compoundToBinaryOp(BinaryOpKind Op) {
  switch (Op) {
  case BinaryOpKind::AddAssign:
    return BinaryOpKind::Add;
  case BinaryOpKind::SubAssign:
    return BinaryOpKind::Sub;
  case BinaryOpKind::MulAssign:
    return BinaryOpKind::Mul;
  case BinaryOpKind::DivAssign:
    return BinaryOpKind::Div;
  case BinaryOpKind::RemAssign:
    return BinaryOpKind::Rem;
  case BinaryOpKind::ShlAssign:
    return BinaryOpKind::Shl;
  case BinaryOpKind::ShrAssign:
    return BinaryOpKind::Shr;
  case BinaryOpKind::AndAssign:
    return BinaryOpKind::BitAnd;
  case BinaryOpKind::XorAssign:
    return BinaryOpKind::BitXor;
  case BinaryOpKind::OrAssign:
    return BinaryOpKind::BitOr;
  default:
    assert(false && "not a compound assignment operator");
    return Op;
  }
}

const char *hfuse::cuda::binaryOpSpelling(BinaryOpKind Op) {
  switch (Op) {
  case BinaryOpKind::Add:
    return "+";
  case BinaryOpKind::Sub:
    return "-";
  case BinaryOpKind::Mul:
    return "*";
  case BinaryOpKind::Div:
    return "/";
  case BinaryOpKind::Rem:
    return "%";
  case BinaryOpKind::Shl:
    return "<<";
  case BinaryOpKind::Shr:
    return ">>";
  case BinaryOpKind::Lt:
    return "<";
  case BinaryOpKind::Gt:
    return ">";
  case BinaryOpKind::Le:
    return "<=";
  case BinaryOpKind::Ge:
    return ">=";
  case BinaryOpKind::Eq:
    return "==";
  case BinaryOpKind::Ne:
    return "!=";
  case BinaryOpKind::BitAnd:
    return "&";
  case BinaryOpKind::BitXor:
    return "^";
  case BinaryOpKind::BitOr:
    return "|";
  case BinaryOpKind::LogicalAnd:
    return "&&";
  case BinaryOpKind::LogicalOr:
    return "||";
  case BinaryOpKind::Assign:
    return "=";
  case BinaryOpKind::AddAssign:
    return "+=";
  case BinaryOpKind::SubAssign:
    return "-=";
  case BinaryOpKind::MulAssign:
    return "*=";
  case BinaryOpKind::DivAssign:
    return "/=";
  case BinaryOpKind::RemAssign:
    return "%=";
  case BinaryOpKind::ShlAssign:
    return "<<=";
  case BinaryOpKind::ShrAssign:
    return ">>=";
  case BinaryOpKind::AndAssign:
    return "&=";
  case BinaryOpKind::XorAssign:
    return "^=";
  case BinaryOpKind::OrAssign:
    return "|=";
  case BinaryOpKind::Comma:
    return ",";
  }
  return "?";
}

const char *hfuse::cuda::unaryOpSpelling(UnaryOpKind Op) {
  switch (Op) {
  case UnaryOpKind::Plus:
    return "+";
  case UnaryOpKind::Minus:
    return "-";
  case UnaryOpKind::LogicalNot:
    return "!";
  case UnaryOpKind::BitNot:
    return "~";
  case UnaryOpKind::PreInc:
  case UnaryOpKind::PostInc:
    return "++";
  case UnaryOpKind::PreDec:
  case UnaryOpKind::PostDec:
    return "--";
  case UnaryOpKind::AddrOf:
    return "&";
  case UnaryOpKind::Deref:
    return "*";
  }
  return "?";
}

Expr *hfuse::cuda::ignoreParensAndImplicitCasts(Expr *E) {
  while (true) {
    if (auto *P = dyn_cast<ParenExpr>(E)) {
      E = P->sub();
      continue;
    }
    if (auto *C = dyn_cast<CastExpr>(E)) {
      if (C->isImplicit()) {
        E = C->sub();
        continue;
      }
    }
    return E;
  }
}

const Expr *hfuse::cuda::ignoreParensAndImplicitCasts(const Expr *E) {
  return ignoreParensAndImplicitCasts(const_cast<Expr *>(E));
}

FunctionDecl *TranslationUnit::findFunction(const std::string &Name) const {
  for (FunctionDecl *F : Functions)
    if (F->name() == Name)
      return F;
  return nullptr;
}

IntLiteralExpr *ASTContext::intLit(int64_t Value) {
  assert(Value >= 0 && "negative literals are built with unary minus");
  auto *E = create<IntLiteralExpr>(SourceLocation(),
                                   static_cast<uint64_t>(Value),
                                   /*IsUnsigned=*/false, /*Is64=*/false);
  E->setType(types().intTy());
  return E;
}

DeclRefExpr *ASTContext::ref(VarDecl *D) {
  auto *E = create<DeclRefExpr>(SourceLocation(), D->name());
  E->setDecl(D);
  E->setType(D->type());
  E->setIsLValue(true);
  return E;
}

BinaryExpr *ASTContext::binOp(BinaryOpKind Op, Expr *LHS, Expr *RHS) {
  return create<BinaryExpr>(SourceLocation(), Op, LHS, RHS);
}

ExprStmt *ASTContext::assignStmt(Expr *LHS, Expr *RHS) {
  Expr *Assign = binOp(BinaryOpKind::Assign, LHS, RHS);
  return create<ExprStmt>(SourceLocation(), Assign);
}
