//===-- cudalang/ASTPrinter.cpp - CuLite source printer -------------------===//
//
// Part of the HFuse reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "cudalang/ASTPrinter.h"

#include "support/StringUtils.h"

#include <cinttypes>

using namespace hfuse;
using namespace hfuse::cuda;

namespace {

/// C operator precedence levels used to decide where parentheses are
/// needed. Higher binds tighter.
enum Precedence {
  PrecComma = 1,
  PrecAssign = 2,
  PrecConditional = 3,
  PrecLogicalOr = 4,
  PrecLogicalAnd = 5,
  PrecBitOr = 6,
  PrecBitXor = 7,
  PrecBitAnd = 8,
  PrecEquality = 9,
  PrecRelational = 10,
  PrecShift = 11,
  PrecAdditive = 12,
  PrecMultiplicative = 13,
  PrecUnary = 14,
  PrecPostfix = 15,
  PrecPrimary = 16,
};

int binaryOpPrecedence(BinaryOpKind Op) {
  switch (Op) {
  case BinaryOpKind::Comma:
    return PrecComma;
  case BinaryOpKind::Assign:
  case BinaryOpKind::AddAssign:
  case BinaryOpKind::SubAssign:
  case BinaryOpKind::MulAssign:
  case BinaryOpKind::DivAssign:
  case BinaryOpKind::RemAssign:
  case BinaryOpKind::ShlAssign:
  case BinaryOpKind::ShrAssign:
  case BinaryOpKind::AndAssign:
  case BinaryOpKind::XorAssign:
  case BinaryOpKind::OrAssign:
    return PrecAssign;
  case BinaryOpKind::LogicalOr:
    return PrecLogicalOr;
  case BinaryOpKind::LogicalAnd:
    return PrecLogicalAnd;
  case BinaryOpKind::BitOr:
    return PrecBitOr;
  case BinaryOpKind::BitXor:
    return PrecBitXor;
  case BinaryOpKind::BitAnd:
    return PrecBitAnd;
  case BinaryOpKind::Eq:
  case BinaryOpKind::Ne:
    return PrecEquality;
  case BinaryOpKind::Lt:
  case BinaryOpKind::Gt:
  case BinaryOpKind::Le:
  case BinaryOpKind::Ge:
    return PrecRelational;
  case BinaryOpKind::Shl:
  case BinaryOpKind::Shr:
    return PrecShift;
  case BinaryOpKind::Add:
  case BinaryOpKind::Sub:
    return PrecAdditive;
  case BinaryOpKind::Mul:
  case BinaryOpKind::Div:
  case BinaryOpKind::Rem:
    return PrecMultiplicative;
  }
  return PrecPrimary;
}

class PrinterImpl {
public:
  std::string Out;

  void indent(unsigned Level) { Out.append(2 * Level, ' '); }

  //===--------------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------------===//

  /// Prints \p E, parenthesizing it if its own precedence is below
  /// \p MinPrec.
  void printExpr(const Expr *E, int MinPrec) {
    int Prec = exprPrecedence(E);
    bool NeedParens = Prec < MinPrec;
    if (NeedParens)
      Out += '(';
    printExprNoParens(E, MinPrec);
    if (NeedParens)
      Out += ')';
  }

  int exprPrecedence(const Expr *E) {
    switch (E->kind()) {
    case StmtKind::Binary:
      return binaryOpPrecedence(cast<BinaryExpr>(E)->op());
    case StmtKind::Conditional:
      return PrecConditional;
    case StmtKind::Unary: {
      auto Op = cast<UnaryExpr>(E)->op();
      if (Op == UnaryOpKind::PostInc || Op == UnaryOpKind::PostDec)
        return PrecPostfix;
      return PrecUnary;
    }
    case StmtKind::Cast:
      return cast<CastExpr>(E)->isImplicit()
                 ? exprPrecedence(cast<CastExpr>(E)->sub())
                 : PrecUnary;
    case StmtKind::Index:
    case StmtKind::Call:
      return PrecPostfix;
    default:
      return PrecPrimary;
    }
  }

  void printExprNoParens(const Expr *E, int MinPrec) {
    switch (E->kind()) {
    case StmtKind::IntLiteral: {
      const auto *I = cast<IntLiteralExpr>(E);
      Out += formatString("%" PRIu64, I->value());
      if (I->isUnsigned())
        Out += 'u';
      if (I->is64())
        Out += "ll";
      return;
    }
    case StmtKind::FloatLiteral: {
      const auto *F = cast<FloatLiteralExpr>(E);
      // Enough digits to round-trip the value exactly.
      std::string Text =
          formatString(F->isDouble() ? "%.17g" : "%.9g", F->value());
      // Make sure the literal re-lexes as floating point.
      if (Text.find('.') == std::string::npos &&
          Text.find('e') == std::string::npos &&
          Text.find("inf") == std::string::npos &&
          Text.find("nan") == std::string::npos)
        Text += ".0";
      Out += Text;
      if (!F->isDouble())
        Out += 'f';
      return;
    }
    case StmtKind::BoolLiteral:
      Out += cast<BoolLiteralExpr>(E)->value() ? "true" : "false";
      return;
    case StmtKind::DeclRef:
      Out += cast<DeclRefExpr>(E)->name();
      return;
    case StmtKind::BuiltinIdx: {
      const auto *B = cast<BuiltinIdxExpr>(E);
      switch (B->builtin()) {
      case BuiltinIdxKind::ThreadIdx:
        Out += "threadIdx";
        break;
      case BuiltinIdxKind::BlockIdx:
        Out += "blockIdx";
        break;
      case BuiltinIdxKind::BlockDim:
        Out += "blockDim";
        break;
      case BuiltinIdxKind::GridDim:
        Out += "gridDim";
        break;
      }
      Out += '.';
      Out += static_cast<char>('x' + B->dim());
      return;
    }
    case StmtKind::Unary: {
      const auto *U = cast<UnaryExpr>(E);
      switch (U->op()) {
      case UnaryOpKind::PostInc:
      case UnaryOpKind::PostDec:
        printExpr(U->sub(), PrecPostfix);
        Out += unaryOpSpelling(U->op());
        return;
      default:
        Out += unaryOpSpelling(U->op());
        // `- -x` must not print as `--x`.
        if ((U->op() == UnaryOpKind::Minus || U->op() == UnaryOpKind::Plus) &&
            isa<UnaryExpr>(U->sub()))
          Out += ' ';
        printExpr(U->sub(), PrecUnary);
        return;
      }
    }
    case StmtKind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      int Prec = binaryOpPrecedence(B->op());
      bool RightAssoc = isAssignmentOp(B->op());
      printExpr(B->lhs(), RightAssoc ? Prec + 1 : Prec);
      if (B->op() == BinaryOpKind::Comma) {
        Out += ", ";
      } else {
        Out += ' ';
        Out += binaryOpSpelling(B->op());
        Out += ' ';
      }
      printExpr(B->rhs(), RightAssoc ? Prec : Prec + 1);
      return;
    }
    case StmtKind::Conditional: {
      const auto *C = cast<ConditionalExpr>(E);
      printExpr(C->cond(), PrecLogicalOr);
      Out += " ? ";
      printExpr(C->trueExpr(), PrecComma + 1);
      Out += " : ";
      printExpr(C->falseExpr(), PrecConditional);
      return;
    }
    case StmtKind::Call: {
      const auto *C = cast<CallExpr>(E);
      Out += C->callee();
      Out += '(';
      bool First = true;
      for (const Expr *Arg : C->args()) {
        if (!First)
          Out += ", ";
        First = false;
        printExpr(Arg, PrecAssign);
      }
      Out += ')';
      return;
    }
    case StmtKind::Cast: {
      const auto *C = cast<CastExpr>(E);
      if (C->isImplicit()) {
        printExpr(C->sub(), MinPrec);
        return;
      }
      Out += '(';
      Out += C->destType()->str();
      Out += ')';
      printExpr(C->sub(), PrecUnary);
      return;
    }
    case StmtKind::Index: {
      const auto *I = cast<IndexExpr>(E);
      printExpr(I->base(), PrecPostfix);
      Out += '[';
      printExpr(I->index(), PrecComma);
      Out += ']';
      return;
    }
    case StmtKind::Paren: {
      const auto *P = cast<ParenExpr>(E);
      Out += '(';
      printExpr(P->sub(), PrecComma);
      Out += ')';
      return;
    }
    default:
      assert(false && "statement kind in expression printer");
      return;
    }
  }

  //===--------------------------------------------------------------------===//
  // Declarations
  //===--------------------------------------------------------------------===//

  void printDeclarator(const VarDecl *V) {
    if (V->isExternShared())
      Out += "extern __shared__ ";
    else if (V->isShared())
      Out += "__shared__ ";
    if (V->isConst())
      Out += "const ";

    // Peel array dimensions, then pointers, to reach the base type.
    const Type *Ty = V->type();
    std::vector<uint64_t> ArrayDims;
    while (Ty->isArray()) {
      ArrayDims.push_back(Ty->arraySize());
      Ty = Ty->element();
    }
    std::string Stars;
    while (Ty->isPointer()) {
      Stars += '*';
      Ty = Ty->element();
    }
    Out += Ty->str();
    Out += ' ';
    Out += Stars;
    Out += V->name();
    for (uint64_t Dim : ArrayDims) {
      Out += '[';
      if (Dim != 0)
        Out += std::to_string(Dim);
      Out += ']';
    }
  }

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  void printStmt(const Stmt *S, unsigned Level) {
    switch (S->kind()) {
    case StmtKind::Compound: {
      indent(Level);
      Out += "{\n";
      for (const Stmt *Sub : cast<CompoundStmt>(S)->body())
        printStmt(Sub, Level + 1);
      indent(Level);
      Out += "}\n";
      return;
    }
    case StmtKind::Decl: {
      indent(Level);
      printDeclGroup(cast<DeclStmt>(S));
      Out += ";\n";
      return;
    }
    case StmtKind::ExprStmtKind: {
      const auto *ES = cast<ExprStmt>(S);
      indent(Level);
      if (ES->expr())
        printExpr(ES->expr(), PrecComma);
      Out += ";\n";
      return;
    }
    case StmtKind::If: {
      const auto *I = cast<IfStmt>(S);
      indent(Level);
      Out += "if (";
      printExpr(I->cond(), PrecComma);
      Out += ")\n";
      printControlledStmt(I->thenStmt(), Level);
      if (I->elseStmt()) {
        indent(Level);
        Out += "else\n";
        printControlledStmt(I->elseStmt(), Level);
      }
      return;
    }
    case StmtKind::For: {
      const auto *F = cast<ForStmt>(S);
      indent(Level);
      Out += "for (";
      if (const Stmt *Init = F->init()) {
        if (const auto *DS = dyn_cast<DeclStmt>(Init))
          printDeclGroup(DS);
        else if (const Expr *E = cast<ExprStmt>(Init)->expr())
          printExpr(E, PrecComma);
      }
      Out += "; ";
      if (F->cond())
        printExpr(F->cond(), PrecComma);
      Out += "; ";
      if (F->inc())
        printExpr(F->inc(), PrecComma);
      Out += ")\n";
      printControlledStmt(F->body(), Level);
      return;
    }
    case StmtKind::While: {
      const auto *W = cast<WhileStmt>(S);
      indent(Level);
      Out += "while (";
      printExpr(W->cond(), PrecComma);
      Out += ")\n";
      printControlledStmt(W->body(), Level);
      return;
    }
    case StmtKind::Return: {
      const auto *R = cast<ReturnStmt>(S);
      indent(Level);
      Out += "return";
      if (R->value()) {
        Out += ' ';
        printExpr(R->value(), PrecComma);
      }
      Out += ";\n";
      return;
    }
    case StmtKind::Break:
      indent(Level);
      Out += "break;\n";
      return;
    case StmtKind::Continue:
      indent(Level);
      Out += "continue;\n";
      return;
    case StmtKind::Goto: {
      indent(Level);
      Out += "goto ";
      Out += cast<GotoStmt>(S)->label();
      Out += ";\n";
      return;
    }
    case StmtKind::Label: {
      const auto *L = cast<LabelStmt>(S);
      // Labels outdent one level, like common C style.
      if (Level > 0)
        indent(Level - 1);
      Out += L->name();
      Out += ":\n";
      if (L->sub())
        printStmt(L->sub(), Level);
      return;
    }
    case StmtKind::Asm: {
      const auto *A = cast<AsmStmt>(S);
      indent(Level);
      Out += "asm ";
      if (A->isVolatile())
        Out += "volatile ";
      Out += "(\"";
      for (char C : A->text()) {
        switch (C) {
        case '"':
          Out += "\\\"";
          break;
        case '\\':
          Out += "\\\\";
          break;
        case '\n':
          Out += "\\n";
          break;
        default:
          Out += C;
          break;
        }
      }
      Out += "\");\n";
      return;
    }
    default:
      assert(false && "expression kind in statement printer");
      return;
    }
  }

  void printDeclGroup(const DeclStmt *DS) {
    bool First = true;
    for (const VarDecl *V : DS->decls()) {
      if (First) {
        printDeclarator(V);
        First = false;
      } else {
        // Subsequent declarators share the base type; print only the
        // pointer stars, name, and array suffixes.
        Out += ", ";
        const Type *Ty = V->type();
        std::vector<uint64_t> ArrayDims;
        while (Ty->isArray()) {
          ArrayDims.push_back(Ty->arraySize());
          Ty = Ty->element();
        }
        while (Ty->isPointer()) {
          Out += '*';
          Ty = Ty->element();
        }
        Out += V->name();
        for (uint64_t Dim : ArrayDims) {
          Out += '[';
          if (Dim != 0)
            Out += std::to_string(Dim);
          Out += ']';
        }
      }
      if (V->init()) {
        Out += " = ";
        printExpr(V->init(), PrecAssign);
      }
    }
  }

  /// Prints the body of an if/for/while: compounds stay on the same
  /// level, single statements are indented one more.
  void printControlledStmt(const Stmt *S, unsigned Level) {
    if (isa<CompoundStmt>(S))
      printStmt(S, Level);
    else
      printStmt(S, Level + 1);
  }

  void printFunction(const FunctionDecl *F) {
    Out += F->isKernel() ? "__global__ " : "__device__ ";
    Out += F->returnType()->str();
    if (Out.back() != '*')
      Out += ' ';
    Out += F->name();
    Out += '(';
    bool First = true;
    for (const VarDecl *P : F->params()) {
      if (!First)
        Out += ", ";
      First = false;
      printDeclarator(P);
    }
    Out += ")\n";
    printStmt(F->body(), 0);
  }
};

} // namespace

std::string hfuse::cuda::printFunction(const FunctionDecl *F) {
  PrinterImpl P;
  P.printFunction(F);
  return std::move(P.Out);
}

std::string hfuse::cuda::printTranslationUnit(const TranslationUnit &TU) {
  PrinterImpl P;
  bool First = true;
  for (const FunctionDecl *F : TU.functions()) {
    if (!First)
      P.Out += '\n';
    First = false;
    P.printFunction(F);
  }
  return std::move(P.Out);
}

std::string hfuse::cuda::printStmt(const Stmt *S, unsigned Indent) {
  PrinterImpl P;
  P.printStmt(S, Indent);
  return std::move(P.Out);
}

std::string hfuse::cuda::printExpr(const Expr *E) {
  PrinterImpl P;
  P.printExpr(E, PrecComma);
  return std::move(P.Out);
}

std::string hfuse::cuda::printVarDecl(const VarDecl *V) {
  PrinterImpl P;
  P.printDeclarator(V);
  return std::move(P.Out);
}
