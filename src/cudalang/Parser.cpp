//===-- cudalang/Parser.cpp - CuLite parser -------------------------------===//
//
// Part of the HFuse reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "cudalang/Parser.h"

#include "cudalang/ConstEval.h"
#include "support/StringUtils.h"

using namespace hfuse;
using namespace hfuse::cuda;

Parser::Parser(std::string_view Source, ASTContext &Ctx,
               DiagnosticEngine &Diags)
    : Ctx(Ctx), Diags(Diags), Lex(Source, Diags) {
  Tok = Lex.next();
  NextTok = Lex.next();
}

void Parser::consume() {
  Tok = NextTok;
  NextTok = Lex.next();
}

bool Parser::expect(TokenKind Kind, const char *Context) {
  if (Tok.is(Kind)) {
    consume();
    return true;
  }
  Diags.error(Tok.Loc, formatString("expected %s %s, found %s",
                                    tokenKindName(Kind), Context,
                                    tokenKindName(Tok.Kind)));
  return false;
}

bool Parser::consumeIf(TokenKind Kind) {
  if (Tok.isNot(Kind))
    return false;
  consume();
  return true;
}

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

bool Parser::startsType(const Token &T) const {
  switch (T.Kind) {
  case TokenKind::KwVoid:
  case TokenKind::KwBool:
  case TokenKind::KwChar:
  case TokenKind::KwInt:
  case TokenKind::KwUnsigned:
  case TokenKind::KwLong:
  case TokenKind::KwFloat:
  case TokenKind::KwDouble:
  case TokenKind::KwInt32T:
  case TokenKind::KwUInt32T:
  case TokenKind::KwInt64T:
  case TokenKind::KwUInt64T:
    return true;
  default:
    return false;
  }
}

bool Parser::startsDeclaration() const {
  switch (Tok.Kind) {
  case TokenKind::KwConst:
  case TokenKind::KwSharedAttr:
  case TokenKind::KwExtern:
    return true;
  default:
    return startsType(Tok);
  }
}

const Type *Parser::parseTypeSpecifier() {
  TypeContext &Types = Ctx.types();
  switch (Tok.Kind) {
  case TokenKind::KwVoid:
    consume();
    return Types.voidTy();
  case TokenKind::KwBool:
    consume();
    return Types.boolTy();
  case TokenKind::KwChar:
    consume();
    return Types.charTy();
  case TokenKind::KwInt:
    consume();
    return Types.intTy();
  case TokenKind::KwFloat:
    consume();
    return Types.floatTy();
  case TokenKind::KwDouble:
    consume();
    return Types.doubleTy();
  case TokenKind::KwInt32T:
    consume();
    return Types.intTy();
  case TokenKind::KwUInt32T:
    consume();
    return Types.uintTy();
  case TokenKind::KwInt64T:
    consume();
    return Types.longTy();
  case TokenKind::KwUInt64T:
    consume();
    return Types.ulongTy();
  case TokenKind::KwLong:
    // "long" or "long long" — both are 64-bit here.
    consume();
    consumeIf(TokenKind::KwLong);
    consumeIf(TokenKind::KwInt);
    return Types.longTy();
  case TokenKind::KwUnsigned:
    consume();
    if (consumeIf(TokenKind::KwChar))
      return Types.ucharTy();
    if (consumeIf(TokenKind::KwLong)) {
      consumeIf(TokenKind::KwLong);
      consumeIf(TokenKind::KwInt);
      return Types.ulongTy();
    }
    consumeIf(TokenKind::KwInt);
    return Types.uintTy();
  default:
    Diags.error(Tok.Loc, formatString("expected a type, found %s",
                                      tokenKindName(Tok.Kind)));
    return nullptr;
  }
}

const Type *Parser::parsePointerSuffix(const Type *Base) {
  while (Tok.is(TokenKind::Star)) {
    consume();
    Base = Ctx.types().pointerTo(Base);
    // const / __restrict__ after '*' are accepted and dropped.
    while (consumeIf(TokenKind::KwConst) || consumeIf(TokenKind::KwRestrict)) {
    }
  }
  return Base;
}

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

bool Parser::parseTranslationUnit() {
  unsigned ErrorsBefore = Diags.errorCount();
  while (Tok.isNot(TokenKind::Eof)) {
    FunctionDecl *F = parseFunction();
    if (!F) {
      // Error recovery: skip to the next plausible function start.
      while (Tok.isNot(TokenKind::Eof) &&
             Tok.isNot(TokenKind::KwGlobalAttr) &&
             Tok.isNot(TokenKind::KwDeviceAttr))
        consume();
      continue;
    }
    Ctx.translationUnit().functions().push_back(F);
  }
  return Diags.errorCount() == ErrorsBefore;
}

FunctionDecl *Parser::parseFunction() {
  SourceLocation Loc = Tok.Loc;
  FunctionDecl::FnKind Kind;
  if (consumeIf(TokenKind::KwGlobalAttr)) {
    Kind = FunctionDecl::FnKind::Global;
  } else if (consumeIf(TokenKind::KwDeviceAttr)) {
    Kind = FunctionDecl::FnKind::Device;
  } else {
    Diags.error(Tok.Loc, "expected '__global__' or '__device__' function");
    return nullptr;
  }
  // Tolerate attribute soup like `__device__ __forceinline__`.
  while (consumeIf(TokenKind::KwRestrict)) {
  }

  const Type *RetTy = parseTypeSpecifier();
  if (!RetTy)
    return nullptr;
  RetTy = parsePointerSuffix(RetTy);

  if (Tok.isNot(TokenKind::Identifier)) {
    Diags.error(Tok.Loc, "expected function name");
    return nullptr;
  }
  std::string Name(Tok.Text);
  consume();

  if (!expect(TokenKind::LParen, "after function name"))
    return nullptr;

  std::vector<VarDecl *> Params;
  if (Tok.isNot(TokenKind::RParen)) {
    while (true) {
      VarDecl *P = parseParam();
      if (!P)
        return nullptr;
      Params.push_back(P);
      if (!consumeIf(TokenKind::Comma))
        break;
    }
  }
  if (!expect(TokenKind::RParen, "after parameter list"))
    return nullptr;

  if (Tok.isNot(TokenKind::LBrace)) {
    Diags.error(Tok.Loc, "expected function body");
    return nullptr;
  }
  CompoundStmt *Body = parseCompound();
  if (!Body)
    return nullptr;

  return Ctx.create<FunctionDecl>(Loc, std::move(Name), Kind, RetTy,
                                  std::move(Params), Body);
}

VarDecl *Parser::parseParam() {
  bool IsConst = consumeIf(TokenKind::KwConst);
  const Type *Ty = parseTypeSpecifier();
  if (!Ty)
    return nullptr;
  IsConst |= consumeIf(TokenKind::KwConst);
  Ty = parsePointerSuffix(Ty);
  if (Tok.isNot(TokenKind::Identifier)) {
    Diags.error(Tok.Loc, "expected parameter name");
    return nullptr;
  }
  SourceLocation Loc = Tok.Loc;
  std::string Name(Tok.Text);
  consume();
  auto *P = Ctx.create<VarDecl>(Loc, std::move(Name), Ty);
  P->setParam(true);
  P->setConst(IsConst);
  return P;
}

DeclStmt *Parser::parseDeclStmt(bool Shared, bool ExternShared) {
  SourceLocation Loc = Tok.Loc;
  bool IsConst = consumeIf(TokenKind::KwConst);
  const Type *BaseTy = parseTypeSpecifier();
  if (!BaseTy)
    return nullptr;
  IsConst |= consumeIf(TokenKind::KwConst);

  std::vector<VarDecl *> Vars;
  while (true) {
    const Type *Ty = parsePointerSuffix(BaseTy);
    if (Tok.isNot(TokenKind::Identifier)) {
      Diags.error(Tok.Loc, "expected variable name in declaration");
      return nullptr;
    }
    SourceLocation NameLoc = Tok.Loc;
    std::string Name(Tok.Text);
    consume();

    // Array suffixes.
    while (Tok.is(TokenKind::LBracket)) {
      consume();
      uint64_t NumElems = 0;
      if (Tok.isNot(TokenKind::RBracket)) {
        Expr *SizeE = parseConditional();
        if (!SizeE)
          return nullptr;
        auto Size = evalConstInt(SizeE);
        if (!Size || *Size <= 0) {
          Diags.error(NameLoc, "array size is not a positive integer constant");
          return nullptr;
        }
        NumElems = static_cast<uint64_t>(*Size);
      } else if (!ExternShared) {
        Diags.error(NameLoc,
                    "only 'extern __shared__' arrays may omit their size");
      }
      if (!expect(TokenKind::RBracket, "after array size"))
        return nullptr;
      Ty = Ctx.types().arrayOf(Ty, NumElems);
    }

    auto *V = Ctx.create<VarDecl>(NameLoc, std::move(Name), Ty);
    V->setShared(Shared || ExternShared);
    V->setExternShared(ExternShared);
    V->setConst(IsConst);

    if (consumeIf(TokenKind::Equal)) {
      Expr *Init = parseAssignment();
      if (!Init)
        return nullptr;
      V->setInit(Init);
    }
    Vars.push_back(V);

    if (!consumeIf(TokenKind::Comma))
      break;
  }
  if (!expect(TokenKind::Semi, "after declaration"))
    return nullptr;
  return Ctx.create<DeclStmt>(Loc, std::move(Vars));
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

CompoundStmt *Parser::parseCompound() {
  SourceLocation Loc = Tok.Loc;
  if (!expect(TokenKind::LBrace, "to open block"))
    return nullptr;
  std::vector<Stmt *> Body;
  while (Tok.isNot(TokenKind::RBrace)) {
    if (Tok.is(TokenKind::Eof)) {
      Diags.error(Loc, "unterminated block");
      return nullptr;
    }
    Stmt *S = parseStatement();
    if (!S)
      return nullptr;
    Body.push_back(S);
  }
  consume(); // '}'
  return Ctx.create<CompoundStmt>(Loc, std::move(Body));
}

Stmt *Parser::parseStatement() {
  SourceLocation Loc = Tok.Loc;
  switch (Tok.Kind) {
  case TokenKind::LBrace:
    return parseCompound();
  case TokenKind::KwIf:
    return parseIf();
  case TokenKind::KwFor:
    return parseFor();
  case TokenKind::KwWhile:
    return parseWhile();
  case TokenKind::KwAsm:
    return parseAsm();
  case TokenKind::KwReturn: {
    consume();
    Expr *Value = nullptr;
    if (Tok.isNot(TokenKind::Semi)) {
      Value = parseExpression();
      if (!Value)
        return nullptr;
    }
    if (!expect(TokenKind::Semi, "after return statement"))
      return nullptr;
    return Ctx.create<ReturnStmt>(Loc, Value);
  }
  case TokenKind::KwBreak:
    consume();
    if (!expect(TokenKind::Semi, "after 'break'"))
      return nullptr;
    return Ctx.create<BreakStmt>(Loc);
  case TokenKind::KwContinue:
    consume();
    if (!expect(TokenKind::Semi, "after 'continue'"))
      return nullptr;
    return Ctx.create<ContinueStmt>(Loc);
  case TokenKind::KwGoto: {
    consume();
    if (Tok.isNot(TokenKind::Identifier)) {
      Diags.error(Tok.Loc, "expected label after 'goto'");
      return nullptr;
    }
    std::string Label(Tok.Text);
    consume();
    if (!expect(TokenKind::Semi, "after goto statement"))
      return nullptr;
    return Ctx.create<GotoStmt>(Loc, std::move(Label));
  }
  case TokenKind::KwSharedAttr: {
    consume();
    return parseDeclStmt(/*Shared=*/true, /*ExternShared=*/false);
  }
  case TokenKind::KwExtern: {
    consume();
    if (!expect(TokenKind::KwSharedAttr, "after 'extern'"))
      return nullptr;
    return parseDeclStmt(/*Shared=*/true, /*ExternShared=*/true);
  }
  case TokenKind::Semi:
    consume();
    return Ctx.create<ExprStmt>(Loc, nullptr);
  case TokenKind::Identifier:
    // A label: `name: stmt`.
    if (ahead().is(TokenKind::Colon)) {
      std::string Name(Tok.Text);
      consume();
      consume();
      // A label directly before '}' labels an empty statement.
      Stmt *Sub = nullptr;
      if (Tok.isNot(TokenKind::RBrace)) {
        Sub = parseStatement();
        if (!Sub)
          return nullptr;
      }
      return Ctx.create<LabelStmt>(Loc, std::move(Name), Sub);
    }
    break;
  default:
    break;
  }

  if (startsDeclaration())
    return parseDeclStmt(/*Shared=*/false, /*ExternShared=*/false);

  Expr *E = parseExpression();
  if (!E)
    return nullptr;
  if (!expect(TokenKind::Semi, "after expression statement"))
    return nullptr;
  return Ctx.create<ExprStmt>(Loc, E);
}

Stmt *Parser::parseIf() {
  SourceLocation Loc = Tok.Loc;
  consume(); // 'if'
  if (!expect(TokenKind::LParen, "after 'if'"))
    return nullptr;
  Expr *Cond = parseExpression();
  if (!Cond)
    return nullptr;
  if (!expect(TokenKind::RParen, "after if condition"))
    return nullptr;
  Stmt *Then = parseStatement();
  if (!Then)
    return nullptr;
  Stmt *Else = nullptr;
  if (consumeIf(TokenKind::KwElse)) {
    Else = parseStatement();
    if (!Else)
      return nullptr;
  }
  return Ctx.create<IfStmt>(Loc, Cond, Then, Else);
}

Stmt *Parser::parseFor() {
  SourceLocation Loc = Tok.Loc;
  consume(); // 'for'
  if (!expect(TokenKind::LParen, "after 'for'"))
    return nullptr;

  Stmt *Init = nullptr;
  if (Tok.is(TokenKind::Semi)) {
    consume();
  } else if (startsDeclaration()) {
    Init = parseDeclStmt(/*Shared=*/false, /*ExternShared=*/false);
    if (!Init)
      return nullptr;
  } else {
    Expr *E = parseExpression();
    if (!E)
      return nullptr;
    if (!expect(TokenKind::Semi, "after for-loop initializer"))
      return nullptr;
    Init = Ctx.create<ExprStmt>(Loc, E);
  }

  Expr *Cond = nullptr;
  if (Tok.isNot(TokenKind::Semi)) {
    Cond = parseExpression();
    if (!Cond)
      return nullptr;
  }
  if (!expect(TokenKind::Semi, "after for-loop condition"))
    return nullptr;

  Expr *Inc = nullptr;
  if (Tok.isNot(TokenKind::RParen)) {
    Inc = parseExpression();
    if (!Inc)
      return nullptr;
  }
  if (!expect(TokenKind::RParen, "after for-loop increment"))
    return nullptr;

  Stmt *Body = parseStatement();
  if (!Body)
    return nullptr;
  return Ctx.create<ForStmt>(Loc, Init, Cond, Inc, Body);
}

Stmt *Parser::parseWhile() {
  SourceLocation Loc = Tok.Loc;
  consume(); // 'while'
  if (!expect(TokenKind::LParen, "after 'while'"))
    return nullptr;
  Expr *Cond = parseExpression();
  if (!Cond)
    return nullptr;
  if (!expect(TokenKind::RParen, "after while condition"))
    return nullptr;
  Stmt *Body = parseStatement();
  if (!Body)
    return nullptr;
  return Ctx.create<WhileStmt>(Loc, Cond, Body);
}

Stmt *Parser::parseAsm() {
  SourceLocation Loc = Tok.Loc;
  consume(); // 'asm'
  bool IsVolatile = consumeIf(TokenKind::KwVolatile);
  if (!expect(TokenKind::LParen, "after 'asm'"))
    return nullptr;
  if (Tok.isNot(TokenKind::StringLiteral)) {
    Diags.error(Tok.Loc, "expected string literal in asm statement");
    return nullptr;
  }
  std::string Text = Tok.StringValue;
  consume();
  // Adjacent string literals concatenate, as in C.
  while (Tok.is(TokenKind::StringLiteral)) {
    Text += Tok.StringValue;
    consume();
  }
  if (!expect(TokenKind::RParen, "after asm string"))
    return nullptr;
  if (!expect(TokenKind::Semi, "after asm statement"))
    return nullptr;
  return Ctx.create<AsmStmt>(Loc, std::move(Text), IsVolatile);
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

Expr *Parser::parseExpression() {
  Expr *LHS = parseAssignment();
  if (!LHS)
    return nullptr;
  while (Tok.is(TokenKind::Comma)) {
    SourceLocation Loc = Tok.Loc;
    consume();
    Expr *RHS = parseAssignment();
    if (!RHS)
      return nullptr;
    LHS = Ctx.create<BinaryExpr>(Loc, BinaryOpKind::Comma, LHS, RHS);
  }
  return LHS;
}

static bool tokenToAssignOp(TokenKind Kind, BinaryOpKind &Op) {
  switch (Kind) {
  case TokenKind::Equal:
    Op = BinaryOpKind::Assign;
    return true;
  case TokenKind::PlusEqual:
    Op = BinaryOpKind::AddAssign;
    return true;
  case TokenKind::MinusEqual:
    Op = BinaryOpKind::SubAssign;
    return true;
  case TokenKind::StarEqual:
    Op = BinaryOpKind::MulAssign;
    return true;
  case TokenKind::SlashEqual:
    Op = BinaryOpKind::DivAssign;
    return true;
  case TokenKind::PercentEqual:
    Op = BinaryOpKind::RemAssign;
    return true;
  case TokenKind::LessLessEqual:
    Op = BinaryOpKind::ShlAssign;
    return true;
  case TokenKind::GreaterGreaterEqual:
    Op = BinaryOpKind::ShrAssign;
    return true;
  case TokenKind::AmpEqual:
    Op = BinaryOpKind::AndAssign;
    return true;
  case TokenKind::PipeEqual:
    Op = BinaryOpKind::OrAssign;
    return true;
  case TokenKind::CaretEqual:
    Op = BinaryOpKind::XorAssign;
    return true;
  default:
    return false;
  }
}

Expr *Parser::parseAssignment() {
  Expr *LHS = parseConditional();
  if (!LHS)
    return nullptr;
  BinaryOpKind Op;
  if (!tokenToAssignOp(Tok.Kind, Op))
    return LHS;
  SourceLocation Loc = Tok.Loc;
  consume();
  Expr *RHS = parseAssignment(); // right-associative
  if (!RHS)
    return nullptr;
  return Ctx.create<BinaryExpr>(Loc, Op, LHS, RHS);
}

Expr *Parser::parseConditional() {
  Expr *Cond = parseBinaryRHS(/*MinPrec=*/1, parseUnary());
  if (!Cond)
    return nullptr;
  if (Tok.isNot(TokenKind::Question))
    return Cond;
  SourceLocation Loc = Tok.Loc;
  consume();
  Expr *TrueE = parseExpression();
  if (!TrueE)
    return nullptr;
  if (!expect(TokenKind::Colon, "in conditional expression"))
    return nullptr;
  Expr *FalseE = parseAssignment();
  if (!FalseE)
    return nullptr;
  return Ctx.create<ConditionalExpr>(Loc, Cond, TrueE, FalseE);
}

/// Binary operator precedence; 0 means "not a binary operator".
static int binaryPrecedence(TokenKind Kind, BinaryOpKind &Op) {
  switch (Kind) {
  case TokenKind::PipePipe:
    Op = BinaryOpKind::LogicalOr;
    return 1;
  case TokenKind::AmpAmp:
    Op = BinaryOpKind::LogicalAnd;
    return 2;
  case TokenKind::Pipe:
    Op = BinaryOpKind::BitOr;
    return 3;
  case TokenKind::Caret:
    Op = BinaryOpKind::BitXor;
    return 4;
  case TokenKind::Amp:
    Op = BinaryOpKind::BitAnd;
    return 5;
  case TokenKind::EqualEqual:
    Op = BinaryOpKind::Eq;
    return 6;
  case TokenKind::ExclaimEqual:
    Op = BinaryOpKind::Ne;
    return 6;
  case TokenKind::Less:
    Op = BinaryOpKind::Lt;
    return 7;
  case TokenKind::Greater:
    Op = BinaryOpKind::Gt;
    return 7;
  case TokenKind::LessEqual:
    Op = BinaryOpKind::Le;
    return 7;
  case TokenKind::GreaterEqual:
    Op = BinaryOpKind::Ge;
    return 7;
  case TokenKind::LessLess:
    Op = BinaryOpKind::Shl;
    return 8;
  case TokenKind::GreaterGreater:
    Op = BinaryOpKind::Shr;
    return 8;
  case TokenKind::Plus:
    Op = BinaryOpKind::Add;
    return 9;
  case TokenKind::Minus:
    Op = BinaryOpKind::Sub;
    return 9;
  case TokenKind::Star:
    Op = BinaryOpKind::Mul;
    return 10;
  case TokenKind::Slash:
    Op = BinaryOpKind::Div;
    return 10;
  case TokenKind::Percent:
    Op = BinaryOpKind::Rem;
    return 10;
  default:
    return 0;
  }
}

Expr *Parser::parseBinaryRHS(int MinPrec, Expr *LHS) {
  if (!LHS)
    return nullptr;
  while (true) {
    BinaryOpKind Op;
    int Prec = binaryPrecedence(Tok.Kind, Op);
    if (Prec < MinPrec)
      return LHS;
    SourceLocation Loc = Tok.Loc;
    consume();
    Expr *RHS = parseUnary();
    if (!RHS)
      return nullptr;
    BinaryOpKind NextOp;
    int NextPrec = binaryPrecedence(Tok.Kind, NextOp);
    if (NextPrec > Prec) {
      RHS = parseBinaryRHS(Prec + 1, RHS);
      if (!RHS)
        return nullptr;
    }
    LHS = Ctx.create<BinaryExpr>(Loc, Op, LHS, RHS);
  }
}

Expr *Parser::parseUnary() {
  SourceLocation Loc = Tok.Loc;
  switch (Tok.Kind) {
  case TokenKind::Plus:
  case TokenKind::Minus:
  case TokenKind::Exclaim:
  case TokenKind::Tilde:
  case TokenKind::Amp:
  case TokenKind::Star:
  case TokenKind::PlusPlus:
  case TokenKind::MinusMinus: {
    UnaryOpKind Op;
    switch (Tok.Kind) {
    case TokenKind::Plus:
      Op = UnaryOpKind::Plus;
      break;
    case TokenKind::Minus:
      Op = UnaryOpKind::Minus;
      break;
    case TokenKind::Exclaim:
      Op = UnaryOpKind::LogicalNot;
      break;
    case TokenKind::Tilde:
      Op = UnaryOpKind::BitNot;
      break;
    case TokenKind::Amp:
      Op = UnaryOpKind::AddrOf;
      break;
    case TokenKind::Star:
      Op = UnaryOpKind::Deref;
      break;
    case TokenKind::PlusPlus:
      Op = UnaryOpKind::PreInc;
      break;
    default:
      Op = UnaryOpKind::PreDec;
      break;
    }
    consume();
    Expr *Sub = parseUnary();
    if (!Sub)
      return nullptr;
    return Ctx.create<UnaryExpr>(Loc, Op, Sub);
  }
  case TokenKind::LParen:
    // A cast iff '(' is followed by a type keyword.
    if (startsType(ahead())) {
      consume();
      const Type *Ty = parseTypeSpecifier();
      if (!Ty)
        return nullptr;
      Ty = parsePointerSuffix(Ty);
      if (!expect(TokenKind::RParen, "after cast type"))
        return nullptr;
      Expr *Sub = parseUnary();
      if (!Sub)
        return nullptr;
      return Ctx.create<CastExpr>(Loc, Ty, Sub, /*IsImplicit=*/false);
    }
    break;
  default:
    break;
  }
  return parsePostfix(parsePrimary());
}

Expr *Parser::parsePostfix(Expr *Base) {
  if (!Base)
    return nullptr;
  while (true) {
    SourceLocation Loc = Tok.Loc;
    switch (Tok.Kind) {
    case TokenKind::LBracket: {
      consume();
      Expr *Idx = parseExpression();
      if (!Idx)
        return nullptr;
      if (!expect(TokenKind::RBracket, "after array index"))
        return nullptr;
      Base = Ctx.create<IndexExpr>(Loc, Base, Idx);
      continue;
    }
    case TokenKind::PlusPlus:
      consume();
      Base = Ctx.create<UnaryExpr>(Loc, UnaryOpKind::PostInc, Base);
      continue;
    case TokenKind::MinusMinus:
      consume();
      Base = Ctx.create<UnaryExpr>(Loc, UnaryOpKind::PostDec, Base);
      continue;
    default:
      return Base;
    }
  }
}

Expr *Parser::parsePrimary() {
  SourceLocation Loc = Tok.Loc;
  switch (Tok.Kind) {
  case TokenKind::IntLiteral: {
    auto *E = Ctx.create<IntLiteralExpr>(Loc, Tok.IntValue, Tok.IntIsUnsigned,
                                         Tok.IntIs64);
    consume();
    return E;
  }
  case TokenKind::FloatLiteral: {
    auto *E = Ctx.create<FloatLiteralExpr>(Loc, Tok.FloatValue,
                                           Tok.FloatIsDouble);
    consume();
    return E;
  }
  case TokenKind::KwTrue:
  case TokenKind::KwFalse: {
    auto *E = Ctx.create<BoolLiteralExpr>(Loc, Tok.is(TokenKind::KwTrue));
    consume();
    return E;
  }
  case TokenKind::LParen: {
    consume();
    Expr *Sub = parseExpression();
    if (!Sub)
      return nullptr;
    if (!expect(TokenKind::RParen, "to close parenthesized expression"))
      return nullptr;
    return Ctx.create<ParenExpr>(Loc, Sub);
  }
  case TokenKind::Identifier: {
    std::string Name(Tok.Text);

    // Builtin index vectors: threadIdx.x and friends.
    BuiltinIdxKind Builtin;
    bool IsBuiltin = true;
    if (Name == "threadIdx")
      Builtin = BuiltinIdxKind::ThreadIdx;
    else if (Name == "blockIdx")
      Builtin = BuiltinIdxKind::BlockIdx;
    else if (Name == "blockDim")
      Builtin = BuiltinIdxKind::BlockDim;
    else if (Name == "gridDim")
      Builtin = BuiltinIdxKind::GridDim;
    else
      IsBuiltin = false;

    if (IsBuiltin && ahead().is(TokenKind::Dot)) {
      consume(); // identifier
      consume(); // '.'
      if (Tok.isNot(TokenKind::Identifier) || Tok.Text.size() != 1 ||
          (Tok.Text[0] != 'x' && Tok.Text[0] != 'y' && Tok.Text[0] != 'z')) {
        Diags.error(Tok.Loc, "expected '.x', '.y', or '.z' on builtin index");
        return nullptr;
      }
      unsigned Dim = static_cast<unsigned>(Tok.Text[0] - 'x');
      consume();
      return Ctx.create<BuiltinIdxExpr>(Loc, Builtin, Dim);
    }

    consume();
    // A call.
    if (Tok.is(TokenKind::LParen)) {
      consume();
      std::vector<Expr *> Args;
      if (Tok.isNot(TokenKind::RParen)) {
        while (true) {
          Expr *Arg = parseAssignment();
          if (!Arg)
            return nullptr;
          Args.push_back(Arg);
          if (!consumeIf(TokenKind::Comma))
            break;
        }
      }
      if (!expect(TokenKind::RParen, "after call arguments"))
        return nullptr;
      return Ctx.create<CallExpr>(Loc, std::move(Name), std::move(Args));
    }
    return Ctx.create<DeclRefExpr>(Loc, std::move(Name));
  }
  default:
    Diags.error(Loc, formatString("expected an expression, found %s",
                                  tokenKindName(Tok.Kind)));
    return nullptr;
  }
}
