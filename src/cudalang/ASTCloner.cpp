//===-- cudalang/ASTCloner.cpp - Deep AST cloning -------------------------===//
//
// Part of the HFuse reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "cudalang/ASTCloner.h"

using namespace hfuse;
using namespace hfuse::cuda;

const Type *ASTCloner::translateType(const Type *Ty) {
  TypeContext &Types = Target.types();
  switch (Ty->kind()) {
  case TypeKind::Pointer:
    return Types.pointerTo(translateType(Ty->element()));
  case TypeKind::Array:
    return Types.arrayOf(translateType(Ty->element()), Ty->arraySize());
  default:
    return Types.scalar(Ty->kind());
  }
}

VarDecl *ASTCloner::cloneVar(const VarDecl *V) {
  auto *Clone =
      Target.create<VarDecl>(V->loc(), V->name(), translateType(V->type()));
  Clone->setShared(V->isShared());
  Clone->setExternShared(V->isExternShared());
  Clone->setConst(V->isConst());
  Clone->setParam(V->isParam());
  // The init expression must be cloned after the mapping is registered,
  // so self-references inside initializers (illegal anyway) do not crash.
  mapDecl(V, Clone);
  if (V->init())
    Clone->setInit(cloneExpr(V->init()));
  return Clone;
}

FunctionDecl *ASTCloner::cloneFunction(const FunctionDecl *F,
                                       const std::string &NewName) {
  std::vector<VarDecl *> Params;
  Params.reserve(F->params().size());
  for (const VarDecl *P : F->params())
    Params.push_back(cloneVar(P));
  auto *Body = cast<CompoundStmt>(cloneStmt(F->body()));
  return Target.create<FunctionDecl>(
      F->loc(), NewName.empty() ? F->name() : NewName, F->fnKind(),
      translateType(F->returnType()), std::move(Params), Body);
}

Stmt *ASTCloner::cloneStmt(const Stmt *S) {
  if (!S)
    return nullptr;
  switch (S->kind()) {
  case StmtKind::Compound: {
    const auto *C = cast<CompoundStmt>(S);
    std::vector<Stmt *> Body;
    Body.reserve(C->body().size());
    for (const Stmt *Sub : C->body())
      Body.push_back(cloneStmt(Sub));
    return Target.create<CompoundStmt>(S->loc(), std::move(Body));
  }
  case StmtKind::Decl: {
    const auto *D = cast<DeclStmt>(S);
    std::vector<VarDecl *> Vars;
    Vars.reserve(D->decls().size());
    for (const VarDecl *V : D->decls())
      Vars.push_back(cloneVar(V));
    return Target.create<DeclStmt>(S->loc(), std::move(Vars));
  }
  case StmtKind::ExprStmtKind: {
    const auto *ES = cast<ExprStmt>(S);
    return Target.create<ExprStmt>(
        S->loc(), ES->expr() ? cloneExpr(ES->expr()) : nullptr);
  }
  case StmtKind::If: {
    const auto *I = cast<IfStmt>(S);
    return Target.create<IfStmt>(S->loc(), cloneExpr(I->cond()),
                                 cloneStmt(I->thenStmt()),
                                 cloneStmt(I->elseStmt()));
  }
  case StmtKind::For: {
    const auto *F = cast<ForStmt>(S);
    return Target.create<ForStmt>(
        S->loc(), cloneStmt(F->init()),
        F->cond() ? cloneExpr(F->cond()) : nullptr,
        F->inc() ? cloneExpr(F->inc()) : nullptr, cloneStmt(F->body()));
  }
  case StmtKind::While: {
    const auto *W = cast<WhileStmt>(S);
    return Target.create<WhileStmt>(S->loc(), cloneExpr(W->cond()),
                                    cloneStmt(W->body()));
  }
  case StmtKind::Return: {
    const auto *R = cast<ReturnStmt>(S);
    return Target.create<ReturnStmt>(
        S->loc(), R->value() ? cloneExpr(R->value()) : nullptr);
  }
  case StmtKind::Break:
    return Target.create<BreakStmt>(S->loc());
  case StmtKind::Continue:
    return Target.create<ContinueStmt>(S->loc());
  case StmtKind::Goto:
    // The target pointer is dropped; Sema re-resolves by name.
    return Target.create<GotoStmt>(S->loc(), cast<GotoStmt>(S)->label());
  case StmtKind::Label: {
    const auto *L = cast<LabelStmt>(S);
    return Target.create<LabelStmt>(S->loc(), L->name(),
                                    cloneStmt(L->sub()));
  }
  case StmtKind::Asm: {
    const auto *A = cast<AsmStmt>(S);
    return Target.create<AsmStmt>(S->loc(), A->text(), A->isVolatile());
  }
  default:
    assert(isa<Expr>(S) && "unknown statement kind in cloner");
    return cloneExpr(cast<Expr>(S));
  }
}

Expr *ASTCloner::cloneExpr(const Expr *E) {
  switch (E->kind()) {
  case StmtKind::IntLiteral: {
    const auto *I = cast<IntLiteralExpr>(E);
    return Target.create<IntLiteralExpr>(E->loc(), I->value(),
                                         I->isUnsigned(), I->is64());
  }
  case StmtKind::FloatLiteral: {
    const auto *F = cast<FloatLiteralExpr>(E);
    return Target.create<FloatLiteralExpr>(E->loc(), F->value(),
                                           F->isDouble());
  }
  case StmtKind::BoolLiteral:
    return Target.create<BoolLiteralExpr>(E->loc(),
                                          cast<BoolLiteralExpr>(E)->value());
  case StmtKind::DeclRef: {
    const auto *Ref = cast<DeclRefExpr>(E);
    // Parameter-to-argument substitution (inliner).
    if (Ref->decl()) {
      auto ExprIt = ExprMap.find(Ref->decl());
      if (ExprIt != ExprMap.end())
        return cloneExpr(ExprIt->second);
    }
    auto DeclIt = Ref->decl() ? DeclMap.find(Ref->decl()) : DeclMap.end();
    if (DeclIt != DeclMap.end()) {
      auto *Clone = Target.create<DeclRefExpr>(E->loc(),
                                               DeclIt->second->name());
      Clone->setDecl(DeclIt->second);
      return Clone;
    }
    // Unmapped refs keep the name; Sema re-resolves in the new function.
    return Target.create<DeclRefExpr>(E->loc(), Ref->name());
  }
  case StmtKind::BuiltinIdx: {
    const auto *B = cast<BuiltinIdxExpr>(E);
    return Target.create<BuiltinIdxExpr>(E->loc(), B->builtin(), B->dim());
  }
  case StmtKind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    return Target.create<UnaryExpr>(E->loc(), U->op(), cloneExpr(U->sub()));
  }
  case StmtKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    return Target.create<BinaryExpr>(E->loc(), B->op(), cloneExpr(B->lhs()),
                                     cloneExpr(B->rhs()));
  }
  case StmtKind::Conditional: {
    const auto *C = cast<ConditionalExpr>(E);
    return Target.create<ConditionalExpr>(E->loc(), cloneExpr(C->cond()),
                                          cloneExpr(C->trueExpr()),
                                          cloneExpr(C->falseExpr()));
  }
  case StmtKind::Call: {
    const auto *C = cast<CallExpr>(E);
    std::vector<Expr *> Args;
    Args.reserve(C->args().size());
    for (const Expr *Arg : C->args())
      Args.push_back(cloneExpr(Arg));
    auto *Clone =
        Target.create<CallExpr>(E->loc(), C->callee(), std::move(Args));
    // Keep the callee resolution: the inliner clones bodies within one
    // context and must still recognize user calls. Cross-context clones
    // re-resolve (or reject) the callee when Sema is re-run.
    Clone->setCalleeDecl(C->calleeDecl());
    return Clone;
  }
  case StmtKind::Cast: {
    const auto *C = cast<CastExpr>(E);
    // Implicit casts are Sema artifacts; clone through them so Sema can
    // be re-run on the result.
    if (C->isImplicit())
      return cloneExpr(C->sub());
    return Target.create<CastExpr>(E->loc(), translateType(C->destType()),
                                   cloneExpr(C->sub()), /*IsImplicit=*/false);
  }
  case StmtKind::Index: {
    const auto *I = cast<IndexExpr>(E);
    return Target.create<IndexExpr>(E->loc(), cloneExpr(I->base()),
                                    cloneExpr(I->index()));
  }
  case StmtKind::Paren:
    return Target.create<ParenExpr>(E->loc(),
                                    cloneExpr(cast<ParenExpr>(E)->sub()));
  default:
    assert(false && "unknown expression kind in cloner");
    return nullptr;
  }
}
