//===-- cudalang/Lexer.cpp - CuLite lexer ---------------------------------===//
//
// Part of the HFuse reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "cudalang/Lexer.h"

#include "support/StringUtils.h"

#include <cassert>
#include <cctype>
#include <cstdlib>
#include <string>
#include <unordered_map>

using namespace hfuse;
using namespace hfuse::cuda;

const char *hfuse::cuda::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Eof:
    return "end of file";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::IntLiteral:
    return "integer literal";
  case TokenKind::FloatLiteral:
    return "floating literal";
  case TokenKind::StringLiteral:
    return "string literal";
  case TokenKind::KwVoid:
    return "'void'";
  case TokenKind::KwBool:
    return "'bool'";
  case TokenKind::KwChar:
    return "'char'";
  case TokenKind::KwInt:
    return "'int'";
  case TokenKind::KwUnsigned:
    return "'unsigned'";
  case TokenKind::KwLong:
    return "'long'";
  case TokenKind::KwFloat:
    return "'float'";
  case TokenKind::KwDouble:
    return "'double'";
  case TokenKind::KwConst:
    return "'const'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwFor:
    return "'for'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwDo:
    return "'do'";
  case TokenKind::KwReturn:
    return "'return'";
  case TokenKind::KwBreak:
    return "'break'";
  case TokenKind::KwContinue:
    return "'continue'";
  case TokenKind::KwGoto:
    return "'goto'";
  case TokenKind::KwTrue:
    return "'true'";
  case TokenKind::KwFalse:
    return "'false'";
  case TokenKind::KwExtern:
    return "'extern'";
  case TokenKind::KwAsm:
    return "'asm'";
  case TokenKind::KwVolatile:
    return "'volatile'";
  case TokenKind::KwGlobalAttr:
    return "'__global__'";
  case TokenKind::KwDeviceAttr:
    return "'__device__'";
  case TokenKind::KwSharedAttr:
    return "'__shared__'";
  case TokenKind::KwRestrict:
    return "'__restrict__'";
  case TokenKind::KwInt32T:
    return "'int32_t'";
  case TokenKind::KwUInt32T:
    return "'uint32_t'";
  case TokenKind::KwInt64T:
    return "'int64_t'";
  case TokenKind::KwUInt64T:
    return "'uint64_t'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Semi:
    return "';'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Colon:
    return "':'";
  case TokenKind::Question:
    return "'?'";
  case TokenKind::Dot:
    return "'.'";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::Amp:
    return "'&'";
  case TokenKind::Pipe:
    return "'|'";
  case TokenKind::Caret:
    return "'^'";
  case TokenKind::Tilde:
    return "'~'";
  case TokenKind::Exclaim:
    return "'!'";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::LessLess:
    return "'<<'";
  case TokenKind::GreaterGreater:
    return "'>>'";
  case TokenKind::LessEqual:
    return "'<='";
  case TokenKind::GreaterEqual:
    return "'>='";
  case TokenKind::EqualEqual:
    return "'=='";
  case TokenKind::ExclaimEqual:
    return "'!='";
  case TokenKind::AmpAmp:
    return "'&&'";
  case TokenKind::PipePipe:
    return "'||'";
  case TokenKind::Equal:
    return "'='";
  case TokenKind::PlusEqual:
    return "'+='";
  case TokenKind::MinusEqual:
    return "'-='";
  case TokenKind::StarEqual:
    return "'*='";
  case TokenKind::SlashEqual:
    return "'/='";
  case TokenKind::PercentEqual:
    return "'%='";
  case TokenKind::LessLessEqual:
    return "'<<='";
  case TokenKind::GreaterGreaterEqual:
    return "'>>='";
  case TokenKind::AmpEqual:
    return "'&='";
  case TokenKind::PipeEqual:
    return "'|='";
  case TokenKind::CaretEqual:
    return "'^='";
  case TokenKind::PlusPlus:
    return "'++'";
  case TokenKind::MinusMinus:
    return "'--'";
  }
  return "unknown token";
}

static const std::unordered_map<std::string_view, TokenKind> &keywordTable() {
  static const std::unordered_map<std::string_view, TokenKind> Table = {
      {"void", TokenKind::KwVoid},
      {"bool", TokenKind::KwBool},
      {"char", TokenKind::KwChar},
      {"int", TokenKind::KwInt},
      {"unsigned", TokenKind::KwUnsigned},
      {"long", TokenKind::KwLong},
      {"float", TokenKind::KwFloat},
      {"double", TokenKind::KwDouble},
      {"const", TokenKind::KwConst},
      {"if", TokenKind::KwIf},
      {"else", TokenKind::KwElse},
      {"for", TokenKind::KwFor},
      {"while", TokenKind::KwWhile},
      {"do", TokenKind::KwDo},
      {"return", TokenKind::KwReturn},
      {"break", TokenKind::KwBreak},
      {"continue", TokenKind::KwContinue},
      {"goto", TokenKind::KwGoto},
      {"true", TokenKind::KwTrue},
      {"false", TokenKind::KwFalse},
      {"extern", TokenKind::KwExtern},
      {"asm", TokenKind::KwAsm},
      {"volatile", TokenKind::KwVolatile},
      {"__global__", TokenKind::KwGlobalAttr},
      {"__device__", TokenKind::KwDeviceAttr},
      {"__shared__", TokenKind::KwSharedAttr},
      {"__restrict__", TokenKind::KwRestrict},
      {"__forceinline__", TokenKind::KwRestrict}, // treated as a no-op
      {"int32_t", TokenKind::KwInt32T},
      {"uint32_t", TokenKind::KwUInt32T},
      {"int64_t", TokenKind::KwInt64T},
      {"uint64_t", TokenKind::KwUInt64T},
  };
  return Table;
}

Lexer::Lexer(std::string_view Source, DiagnosticEngine &Diags)
    : Source(Source), Diags(Diags) {}

char Lexer::peek(unsigned Ahead) const {
  if (Pos + Ahead >= Source.size())
    return '\0';
  return Source[Pos + Ahead];
}

char Lexer::advance() {
  assert(Pos < Source.size() && "advancing past end of input");
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Column = 1;
  } else {
    ++Column;
  }
  return C;
}

bool Lexer::match(char Expected) {
  if (peek() != Expected)
    return false;
  advance();
  return true;
}

void Lexer::skipWhitespaceAndComments() {
  while (Pos < Source.size()) {
    char C = peek();
    if (std::isspace(static_cast<unsigned char>(C))) {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (Pos < Source.size() && peek() != '\n')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      SourceLocation Start = location();
      advance();
      advance();
      bool Closed = false;
      while (Pos < Source.size()) {
        if (peek() == '*' && peek(1) == '/') {
          advance();
          advance();
          Closed = true;
          break;
        }
        advance();
      }
      if (!Closed)
        Diags.error(Start, "unterminated block comment");
      continue;
    }
    return;
  }
}

Token Lexer::makeToken(TokenKind Kind, size_t Begin, SourceLocation Loc) {
  Token Tok;
  Tok.Kind = Kind;
  Tok.Loc = Loc;
  Tok.Text = Source.substr(Begin, Pos - Begin);
  return Tok;
}

Token Lexer::lexIdentifierOrKeyword(SourceLocation Loc) {
  size_t Begin = Pos;
  while (Pos < Source.size() &&
         (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_'))
    advance();
  Token Tok = makeToken(TokenKind::Identifier, Begin, Loc);
  auto It = keywordTable().find(Tok.Text);
  if (It != keywordTable().end())
    Tok.Kind = It->second;
  return Tok;
}

Token Lexer::lexNumber(SourceLocation Loc) {
  size_t Begin = Pos;
  bool IsHex = false;
  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    IsHex = true;
    advance();
    advance();
    while (std::isxdigit(static_cast<unsigned char>(peek())))
      advance();
  } else {
    while (std::isdigit(static_cast<unsigned char>(peek())))
      advance();
  }

  bool IsFloat = false;
  if (!IsHex) {
    if (peek() == '.') {
      IsFloat = true;
      advance();
      while (std::isdigit(static_cast<unsigned char>(peek())))
        advance();
    }
    if (peek() == 'e' || peek() == 'E') {
      char Next = peek(1);
      char Next2 = peek(2);
      bool HasExp = std::isdigit(static_cast<unsigned char>(Next)) ||
                    ((Next == '+' || Next == '-') &&
                     std::isdigit(static_cast<unsigned char>(Next2)));
      if (HasExp) {
        IsFloat = true;
        advance();
        if (peek() == '+' || peek() == '-')
          advance();
        while (std::isdigit(static_cast<unsigned char>(peek())))
          advance();
      }
    }
  }

  size_t DigitsEnd = Pos;

  if (IsFloat) {
    bool IsDouble = true;
    if (peek() == 'f' || peek() == 'F') {
      IsDouble = false;
      advance();
    }
    Token Tok = makeToken(TokenKind::FloatLiteral, Begin, Loc);
    std::string Digits(Source.substr(Begin, DigitsEnd - Begin));
    Tok.FloatValue = std::strtod(Digits.c_str(), nullptr);
    Tok.FloatIsDouble = IsDouble;
    return Tok;
  }

  // Integer suffixes: u/U and l/L/ll/LL in either order.
  bool IsUnsigned = false;
  bool Is64 = false;
  while (true) {
    char C = peek();
    if (C == 'u' || C == 'U') {
      IsUnsigned = true;
      advance();
      continue;
    }
    if (C == 'l' || C == 'L') {
      Is64 = true;
      advance();
      if (peek() == 'l' || peek() == 'L')
        advance();
      continue;
    }
    break;
  }

  Token Tok = makeToken(TokenKind::IntLiteral, Begin, Loc);
  std::string Digits(Source.substr(Begin, DigitsEnd - Begin));
  Tok.IntValue = std::strtoull(Digits.c_str(), nullptr, IsHex ? 16 : 10);
  // Large literals that do not fit a 32-bit type are implicitly 64-bit.
  if (Tok.IntValue > 0xFFFFFFFFull)
    Is64 = true;
  Tok.IntIsUnsigned = IsUnsigned;
  Tok.IntIs64 = Is64;
  return Tok;
}

Token Lexer::lexString(SourceLocation Loc) {
  size_t Begin = Pos;
  advance(); // consume the opening quote
  std::string Value;
  while (true) {
    if (Pos >= Source.size()) {
      Diags.error(Loc, "unterminated string literal");
      break;
    }
    char C = advance();
    if (C == '"')
      break;
    if (C == '\\' && Pos < Source.size()) {
      char Esc = advance();
      switch (Esc) {
      case 'n':
        Value.push_back('\n');
        break;
      case 't':
        Value.push_back('\t');
        break;
      case '\\':
        Value.push_back('\\');
        break;
      case '"':
        Value.push_back('"');
        break;
      default:
        Value.push_back(Esc);
        break;
      }
      continue;
    }
    Value.push_back(C);
  }
  Token Tok = makeToken(TokenKind::StringLiteral, Begin, Loc);
  Tok.StringValue = std::move(Value);
  return Tok;
}

Token Lexer::next() {
  skipWhitespaceAndComments();
  SourceLocation Loc = location();
  if (Pos >= Source.size()) {
    Token Tok;
    Tok.Kind = TokenKind::Eof;
    Tok.Loc = Loc;
    return Tok;
  }

  char C = peek();
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
    return lexIdentifierOrKeyword(Loc);
  if (std::isdigit(static_cast<unsigned char>(C)) ||
      (C == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))))
    return lexNumber(Loc);
  if (C == '"')
    return lexString(Loc);

  size_t Begin = Pos;
  advance();
  switch (C) {
  case '(':
    return makeToken(TokenKind::LParen, Begin, Loc);
  case ')':
    return makeToken(TokenKind::RParen, Begin, Loc);
  case '{':
    return makeToken(TokenKind::LBrace, Begin, Loc);
  case '}':
    return makeToken(TokenKind::RBrace, Begin, Loc);
  case '[':
    return makeToken(TokenKind::LBracket, Begin, Loc);
  case ']':
    return makeToken(TokenKind::RBracket, Begin, Loc);
  case ';':
    return makeToken(TokenKind::Semi, Begin, Loc);
  case ',':
    return makeToken(TokenKind::Comma, Begin, Loc);
  case ':':
    return makeToken(TokenKind::Colon, Begin, Loc);
  case '?':
    return makeToken(TokenKind::Question, Begin, Loc);
  case '.':
    return makeToken(TokenKind::Dot, Begin, Loc);
  case '~':
    return makeToken(TokenKind::Tilde, Begin, Loc);
  case '+':
    if (match('+'))
      return makeToken(TokenKind::PlusPlus, Begin, Loc);
    if (match('='))
      return makeToken(TokenKind::PlusEqual, Begin, Loc);
    return makeToken(TokenKind::Plus, Begin, Loc);
  case '-':
    if (match('-'))
      return makeToken(TokenKind::MinusMinus, Begin, Loc);
    if (match('='))
      return makeToken(TokenKind::MinusEqual, Begin, Loc);
    return makeToken(TokenKind::Minus, Begin, Loc);
  case '*':
    if (match('='))
      return makeToken(TokenKind::StarEqual, Begin, Loc);
    return makeToken(TokenKind::Star, Begin, Loc);
  case '/':
    if (match('='))
      return makeToken(TokenKind::SlashEqual, Begin, Loc);
    return makeToken(TokenKind::Slash, Begin, Loc);
  case '%':
    if (match('='))
      return makeToken(TokenKind::PercentEqual, Begin, Loc);
    return makeToken(TokenKind::Percent, Begin, Loc);
  case '&':
    if (match('&'))
      return makeToken(TokenKind::AmpAmp, Begin, Loc);
    if (match('='))
      return makeToken(TokenKind::AmpEqual, Begin, Loc);
    return makeToken(TokenKind::Amp, Begin, Loc);
  case '|':
    if (match('|'))
      return makeToken(TokenKind::PipePipe, Begin, Loc);
    if (match('='))
      return makeToken(TokenKind::PipeEqual, Begin, Loc);
    return makeToken(TokenKind::Pipe, Begin, Loc);
  case '^':
    if (match('='))
      return makeToken(TokenKind::CaretEqual, Begin, Loc);
    return makeToken(TokenKind::Caret, Begin, Loc);
  case '!':
    if (match('='))
      return makeToken(TokenKind::ExclaimEqual, Begin, Loc);
    return makeToken(TokenKind::Exclaim, Begin, Loc);
  case '<':
    if (match('<')) {
      if (match('='))
        return makeToken(TokenKind::LessLessEqual, Begin, Loc);
      return makeToken(TokenKind::LessLess, Begin, Loc);
    }
    if (match('='))
      return makeToken(TokenKind::LessEqual, Begin, Loc);
    return makeToken(TokenKind::Less, Begin, Loc);
  case '>':
    if (match('>')) {
      if (match('='))
        return makeToken(TokenKind::GreaterGreaterEqual, Begin, Loc);
      return makeToken(TokenKind::GreaterGreater, Begin, Loc);
    }
    if (match('='))
      return makeToken(TokenKind::GreaterEqual, Begin, Loc);
    return makeToken(TokenKind::Greater, Begin, Loc);
  case '=':
    if (match('='))
      return makeToken(TokenKind::EqualEqual, Begin, Loc);
    return makeToken(TokenKind::Equal, Begin, Loc);
  default:
    break;
  }
  Diags.error(Loc, formatString("unexpected character '%c'", C));
  return next();
}
