//===-- cudalang/AST.h - CuLite abstract syntax tree ------------*- C++ -*-===//
//
// Part of the HFuse reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The CuLite AST. Mirrors Clang's design in miniature: Expr derives from
/// Stmt, nodes are arena-allocated in an ASTContext and never freed
/// individually, and LLVM-style isa<>/cast<>/dyn_cast<> dispatch on a
/// StmtKind/DeclKind tag. All HFuse transformations (renaming, decl
/// lifting, inlining, barrier replacement, fusion) operate on this tree.
///
//===----------------------------------------------------------------------===//

#ifndef HFUSE_CUDALANG_AST_H
#define HFUSE_CUDALANG_AST_H

#include "cudalang/Type.h"
#include "support/Casting.h"
#include "support/SourceLocation.h"

#include <memory>
#include <string>
#include <vector>

namespace hfuse::cuda {

class ASTContext;
class VarDecl;
class FunctionDecl;
class LabelStmt;

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

enum class StmtKind : uint8_t {
  // Statements.
  Compound,
  Decl,
  ExprStmtKind,
  If,
  For,
  While,
  Return,
  Break,
  Continue,
  Goto,
  Label,
  Asm,
  // Expressions. firstExpr/lastExpr bound the range for Expr::classof.
  IntLiteral,
  FloatLiteral,
  BoolLiteral,
  DeclRef,
  BuiltinIdx,
  Unary,
  Binary,
  Conditional,
  Call,
  Cast,
  Index,
  Paren,
};

/// Base of all statements (and, transitively, expressions).
class Stmt {
public:
  StmtKind kind() const { return Kind; }
  SourceLocation loc() const { return Loc; }
  void setLoc(SourceLocation L) { Loc = L; }

protected:
  Stmt(StmtKind Kind, SourceLocation Loc) : Kind(Kind), Loc(Loc) {}
  ~Stmt() = default;

private:
  StmtKind Kind;
  SourceLocation Loc;
};

/// A `{ ... }` block.
class CompoundStmt : public Stmt {
public:
  CompoundStmt(SourceLocation Loc, std::vector<Stmt *> Body)
      : Stmt(StmtKind::Compound, Loc), Body(std::move(Body)) {}

  std::vector<Stmt *> &body() { return Body; }
  const std::vector<Stmt *> &body() const { return Body; }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Compound; }

private:
  std::vector<Stmt *> Body;
};

/// A local declaration statement; may declare several variables
/// (`int a = 1, b;`).
class DeclStmt : public Stmt {
public:
  DeclStmt(SourceLocation Loc, std::vector<VarDecl *> Vars)
      : Stmt(StmtKind::Decl, Loc), Vars(std::move(Vars)) {}

  std::vector<VarDecl *> &decls() { return Vars; }
  const std::vector<VarDecl *> &decls() const { return Vars; }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Decl; }

private:
  std::vector<VarDecl *> Vars;
};

class Expr;

/// An expression evaluated for its side effects.
class ExprStmt : public Stmt {
public:
  ExprStmt(SourceLocation Loc, Expr *E)
      : Stmt(StmtKind::ExprStmtKind, Loc), E(E) {}

  Expr *expr() const { return E; }
  void setExpr(Expr *NewE) { E = NewE; }

  static bool classof(const Stmt *S) {
    return S->kind() == StmtKind::ExprStmtKind;
  }

private:
  Expr *E;
};

class IfStmt : public Stmt {
public:
  IfStmt(SourceLocation Loc, Expr *Cond, Stmt *Then, Stmt *Else)
      : Stmt(StmtKind::If, Loc), Cond(Cond), Then(Then), Else(Else) {}

  Expr *cond() const { return Cond; }
  Stmt *thenStmt() const { return Then; }
  Stmt *elseStmt() const { return Else; }
  void setCond(Expr *E) { Cond = E; }
  void setThen(Stmt *S) { Then = S; }
  void setElse(Stmt *S) { Else = S; }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::If; }

private:
  Expr *Cond;
  Stmt *Then;
  Stmt *Else; // may be null
};

class ForStmt : public Stmt {
public:
  ForStmt(SourceLocation Loc, Stmt *Init, Expr *Cond, Expr *Inc, Stmt *Body)
      : Stmt(StmtKind::For, Loc), Init(Init), Cond(Cond), Inc(Inc),
        Body(Body) {}

  Stmt *init() const { return Init; } // DeclStmt, ExprStmt, or null
  Expr *cond() const { return Cond; } // may be null
  Expr *inc() const { return Inc; }   // may be null
  Stmt *body() const { return Body; }
  void setInit(Stmt *S) { Init = S; }
  void setCond(Expr *E) { Cond = E; }
  void setInc(Expr *E) { Inc = E; }
  void setBody(Stmt *S) { Body = S; }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::For; }

private:
  Stmt *Init;
  Expr *Cond;
  Expr *Inc;
  Stmt *Body;
};

class WhileStmt : public Stmt {
public:
  WhileStmt(SourceLocation Loc, Expr *Cond, Stmt *Body)
      : Stmt(StmtKind::While, Loc), Cond(Cond), Body(Body) {}

  Expr *cond() const { return Cond; }
  Stmt *body() const { return Body; }
  void setCond(Expr *E) { Cond = E; }
  void setBody(Stmt *S) { Body = S; }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::While; }

private:
  Expr *Cond;
  Stmt *Body;
};

class ReturnStmt : public Stmt {
public:
  ReturnStmt(SourceLocation Loc, Expr *Value)
      : Stmt(StmtKind::Return, Loc), Value(Value) {}

  Expr *value() const { return Value; } // may be null
  void setValue(Expr *E) { Value = E; }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Return; }

private:
  Expr *Value;
};

class BreakStmt : public Stmt {
public:
  explicit BreakStmt(SourceLocation Loc) : Stmt(StmtKind::Break, Loc) {}
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Break; }
};

class ContinueStmt : public Stmt {
public:
  explicit ContinueStmt(SourceLocation Loc) : Stmt(StmtKind::Continue, Loc) {}
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Continue; }
};

class GotoStmt : public Stmt {
public:
  GotoStmt(SourceLocation Loc, std::string Label)
      : Stmt(StmtKind::Goto, Loc), Label(std::move(Label)) {}

  const std::string &label() const { return Label; }
  void setLabel(std::string NewLabel) { Label = std::move(NewLabel); }

  /// Resolved by Sema.
  LabelStmt *target() const { return Target; }
  void setTarget(LabelStmt *T) { Target = T; }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Goto; }

private:
  std::string Label;
  LabelStmt *Target = nullptr;
};

/// `name: sub-stmt`. A trailing label uses an empty ExprStmt as sub.
class LabelStmt : public Stmt {
public:
  LabelStmt(SourceLocation Loc, std::string Name, Stmt *Sub)
      : Stmt(StmtKind::Label, Loc), Name(std::move(Name)), Sub(Sub) {}

  const std::string &name() const { return Name; }
  void setName(std::string NewName) { Name = std::move(NewName); }
  Stmt *sub() const { return Sub; } // may be null (label at block end)
  void setSub(Stmt *S) { Sub = S; }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Label; }

private:
  std::string Name;
  Stmt *Sub;
};

/// Inline PTX assembly, e.g. `asm("bar.sync 1, 896;");`. HFuse emits these
/// for partial barriers; the code generator pattern-matches the text.
class AsmStmt : public Stmt {
public:
  AsmStmt(SourceLocation Loc, std::string Text, bool IsVolatile)
      : Stmt(StmtKind::Asm, Loc), Text(std::move(Text)),
        IsVolatile(IsVolatile) {}

  const std::string &text() const { return Text; }
  bool isVolatile() const { return IsVolatile; }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Asm; }

private:
  std::string Text;
  bool IsVolatile;
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// Base of all expressions. The type and lvalue-ness are filled in by Sema.
class Expr : public Stmt {
public:
  const Type *type() const { return Ty; }
  void setType(const Type *T) { Ty = T; }
  bool isLValue() const { return LValue; }
  void setIsLValue(bool V) { LValue = V; }

  static bool classof(const Stmt *S) {
    return S->kind() >= StmtKind::IntLiteral;
  }

protected:
  Expr(StmtKind Kind, SourceLocation Loc) : Stmt(Kind, Loc) {}

private:
  const Type *Ty = nullptr;
  bool LValue = false;
};

class IntLiteralExpr : public Expr {
public:
  IntLiteralExpr(SourceLocation Loc, uint64_t Value, bool IsUnsigned,
                 bool Is64)
      : Expr(StmtKind::IntLiteral, Loc), Value(Value), IsUnsigned(IsUnsigned),
        Is64(Is64) {}

  uint64_t value() const { return Value; }
  bool isUnsigned() const { return IsUnsigned; }
  bool is64() const { return Is64; }

  static bool classof(const Stmt *S) {
    return S->kind() == StmtKind::IntLiteral;
  }

private:
  uint64_t Value;
  bool IsUnsigned;
  bool Is64;
};

class FloatLiteralExpr : public Expr {
public:
  FloatLiteralExpr(SourceLocation Loc, double Value, bool IsDouble)
      : Expr(StmtKind::FloatLiteral, Loc), Value(Value), IsDouble(IsDouble) {}

  double value() const { return Value; }
  bool isDouble() const { return IsDouble; }

  static bool classof(const Stmt *S) {
    return S->kind() == StmtKind::FloatLiteral;
  }

private:
  double Value;
  bool IsDouble;
};

class BoolLiteralExpr : public Expr {
public:
  BoolLiteralExpr(SourceLocation Loc, bool Value)
      : Expr(StmtKind::BoolLiteral, Loc), Value(Value) {}

  bool value() const { return Value; }

  static bool classof(const Stmt *S) {
    return S->kind() == StmtKind::BoolLiteral;
  }

private:
  bool Value;
};

/// A reference to a variable or parameter; resolved to a VarDecl by Sema.
class DeclRefExpr : public Expr {
public:
  DeclRefExpr(SourceLocation Loc, std::string Name)
      : Expr(StmtKind::DeclRef, Loc), Name(std::move(Name)) {}

  const std::string &name() const { return Name; }
  void setName(std::string NewName) { Name = std::move(NewName); }

  VarDecl *decl() const { return Decl; }
  void setDecl(VarDecl *D) { Decl = D; }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::DeclRef; }

private:
  std::string Name;
  VarDecl *Decl = nullptr;
};

/// Which CUDA builtin index vector is referenced.
enum class BuiltinIdxKind : uint8_t { ThreadIdx, BlockIdx, BlockDim, GridDim };

/// `threadIdx.x`, `blockDim.y`, ... Dim is 0 for .x, 1 for .y, 2 for .z.
class BuiltinIdxExpr : public Expr {
public:
  BuiltinIdxExpr(SourceLocation Loc, BuiltinIdxKind Builtin, unsigned Dim)
      : Expr(StmtKind::BuiltinIdx, Loc), Builtin(Builtin), Dim(Dim) {
    assert(Dim < 3 && "builtin index dimension out of range");
  }

  BuiltinIdxKind builtin() const { return Builtin; }
  unsigned dim() const { return Dim; }

  static bool classof(const Stmt *S) {
    return S->kind() == StmtKind::BuiltinIdx;
  }

private:
  BuiltinIdxKind Builtin;
  unsigned Dim;
};

enum class UnaryOpKind : uint8_t {
  Plus,
  Minus,
  LogicalNot,
  BitNot,
  PreInc,
  PreDec,
  PostInc,
  PostDec,
  AddrOf,
  Deref,
};

class UnaryExpr : public Expr {
public:
  UnaryExpr(SourceLocation Loc, UnaryOpKind Op, Expr *Sub)
      : Expr(StmtKind::Unary, Loc), Op(Op), Sub(Sub) {}

  UnaryOpKind op() const { return Op; }
  Expr *sub() const { return Sub; }
  void setSub(Expr *E) { Sub = E; }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Unary; }

private:
  UnaryOpKind Op;
  Expr *Sub;
};

enum class BinaryOpKind : uint8_t {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  Shl,
  Shr,
  Lt,
  Gt,
  Le,
  Ge,
  Eq,
  Ne,
  BitAnd,
  BitXor,
  BitOr,
  LogicalAnd,
  LogicalOr,
  Assign,
  AddAssign,
  SubAssign,
  MulAssign,
  DivAssign,
  RemAssign,
  ShlAssign,
  ShrAssign,
  AndAssign,
  XorAssign,
  OrAssign,
  Comma,
};

/// Returns true for the `=`-family operators.
bool isAssignmentOp(BinaryOpKind Op);
/// For `+=` returns `+` etc.; invalid for plain `=`.
BinaryOpKind compoundToBinaryOp(BinaryOpKind Op);
/// C spelling of the operator ("<<=").
const char *binaryOpSpelling(BinaryOpKind Op);
const char *unaryOpSpelling(UnaryOpKind Op);

class BinaryExpr : public Expr {
public:
  BinaryExpr(SourceLocation Loc, BinaryOpKind Op, Expr *LHS, Expr *RHS)
      : Expr(StmtKind::Binary, Loc), Op(Op), LHS(LHS), RHS(RHS) {}

  BinaryOpKind op() const { return Op; }
  Expr *lhs() const { return LHS; }
  Expr *rhs() const { return RHS; }
  void setLHS(Expr *E) { LHS = E; }
  void setRHS(Expr *E) { RHS = E; }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Binary; }

private:
  BinaryOpKind Op;
  Expr *LHS;
  Expr *RHS;
};

class ConditionalExpr : public Expr {
public:
  ConditionalExpr(SourceLocation Loc, Expr *Cond, Expr *TrueE, Expr *FalseE)
      : Expr(StmtKind::Conditional, Loc), Cond(Cond), TrueE(TrueE),
        FalseE(FalseE) {}

  Expr *cond() const { return Cond; }
  Expr *trueExpr() const { return TrueE; }
  Expr *falseExpr() const { return FalseE; }
  void setCond(Expr *E) { Cond = E; }
  void setTrueExpr(Expr *E) { TrueE = E; }
  void setFalseExpr(Expr *E) { FalseE = E; }

  static bool classof(const Stmt *S) {
    return S->kind() == StmtKind::Conditional;
  }

private:
  Expr *Cond;
  Expr *TrueE;
  Expr *FalseE;
};

/// A call to either a user `__device__` function (CalleeDecl set by Sema)
/// or an intrinsic such as `__syncthreads`, `atomicAdd`, `min`.
class CallExpr : public Expr {
public:
  CallExpr(SourceLocation Loc, std::string Callee, std::vector<Expr *> Args)
      : Expr(StmtKind::Call, Loc), Callee(std::move(Callee)),
        Args(std::move(Args)) {}

  const std::string &callee() const { return Callee; }
  std::vector<Expr *> &args() { return Args; }
  const std::vector<Expr *> &args() const { return Args; }

  FunctionDecl *calleeDecl() const { return CalleeDecl; }
  void setCalleeDecl(FunctionDecl *D) { CalleeDecl = D; }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Call; }

private:
  std::string Callee;
  std::vector<Expr *> Args;
  FunctionDecl *CalleeDecl = nullptr;
};

/// C-style cast `(float)x`; also used for Sema-inserted implicit
/// conversions (which the printer does not render).
class CastExpr : public Expr {
public:
  CastExpr(SourceLocation Loc, const Type *DestTy, Expr *Sub, bool IsImplicit)
      : Expr(StmtKind::Cast, Loc), DestTy(DestTy), Sub(Sub),
        Implicit(IsImplicit) {}

  const Type *destType() const { return DestTy; }
  Expr *sub() const { return Sub; }
  void setSub(Expr *E) { Sub = E; }
  bool isImplicit() const { return Implicit; }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Cast; }

private:
  const Type *DestTy;
  Expr *Sub;
  bool Implicit;
};

/// `base[idx]` where base is a pointer or array.
class IndexExpr : public Expr {
public:
  IndexExpr(SourceLocation Loc, Expr *Base, Expr *Idx)
      : Expr(StmtKind::Index, Loc), Base(Base), Idx(Idx) {}

  Expr *base() const { return Base; }
  Expr *index() const { return Idx; }
  void setBase(Expr *E) { Base = E; }
  void setIndex(Expr *E) { Idx = E; }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Index; }

private:
  Expr *Base;
  Expr *Idx;
};

class ParenExpr : public Expr {
public:
  ParenExpr(SourceLocation Loc, Expr *Sub)
      : Expr(StmtKind::Paren, Loc), Sub(Sub) {}

  Expr *sub() const { return Sub; }
  void setSub(Expr *E) { Sub = E; }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Paren; }

private:
  Expr *Sub;
};

/// Strips ParenExpr and implicit CastExpr wrappers.
Expr *ignoreParensAndImplicitCasts(Expr *E);
const Expr *ignoreParensAndImplicitCasts(const Expr *E);

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

enum class DeclKind : uint8_t { Var, Function };

class Decl {
public:
  DeclKind kind() const { return Kind; }
  SourceLocation loc() const { return Loc; }

protected:
  Decl(DeclKind Kind, SourceLocation Loc) : Kind(Kind), Loc(Loc) {}
  ~Decl() = default;

private:
  DeclKind Kind;
  SourceLocation Loc;
};

/// A variable: kernel parameter, local, or shared-memory array.
class VarDecl : public Decl {
public:
  VarDecl(SourceLocation Loc, std::string Name, const Type *Ty)
      : Decl(DeclKind::Var, Loc), Name(std::move(Name)), Ty(Ty) {}

  const std::string &name() const { return Name; }
  void setName(std::string NewName) { Name = std::move(NewName); }

  const Type *type() const { return Ty; }
  void setType(const Type *T) { Ty = T; }

  Expr *init() const { return Init; }
  void setInit(Expr *E) { Init = E; }

  bool isShared() const { return Shared; }
  void setShared(bool V) { Shared = V; }
  bool isExternShared() const { return ExternShared; }
  void setExternShared(bool V) { ExternShared = V; }
  bool isConst() const { return Const; }
  void setConst(bool V) { Const = V; }
  bool isParam() const { return Param; }
  void setParam(bool V) { Param = V; }

  static bool classof(const Decl *D) { return D->kind() == DeclKind::Var; }

private:
  std::string Name;
  const Type *Ty;
  Expr *Init = nullptr;
  bool Shared = false;
  bool ExternShared = false;
  bool Const = false;
  bool Param = false;
};

/// A `__global__` kernel or `__device__` helper function.
class FunctionDecl : public Decl {
public:
  enum class FnKind : uint8_t { Global, Device };

  FunctionDecl(SourceLocation Loc, std::string Name, FnKind Kind,
               const Type *RetTy, std::vector<VarDecl *> Params,
               CompoundStmt *Body)
      : Decl(DeclKind::Function, Loc), Name(std::move(Name)), Kind(Kind),
        RetTy(RetTy), Params(std::move(Params)), Body(Body) {}

  const std::string &name() const { return Name; }
  void setName(std::string NewName) { Name = std::move(NewName); }
  FnKind fnKind() const { return Kind; }
  bool isKernel() const { return Kind == FnKind::Global; }
  const Type *returnType() const { return RetTy; }

  std::vector<VarDecl *> &params() { return Params; }
  const std::vector<VarDecl *> &params() const { return Params; }

  CompoundStmt *body() const { return Body; }
  void setBody(CompoundStmt *B) { Body = B; }

  static bool classof(const Decl *D) { return D->kind() == DeclKind::Function; }

private:
  std::string Name;
  FnKind Kind;
  const Type *RetTy;
  std::vector<VarDecl *> Params;
  CompoundStmt *Body;
};

/// A parsed source file: an ordered list of functions.
class TranslationUnit {
public:
  std::vector<FunctionDecl *> &functions() { return Functions; }
  const std::vector<FunctionDecl *> &functions() const { return Functions; }

  /// Returns the function named \p Name, or null.
  FunctionDecl *findFunction(const std::string &Name) const;

private:
  std::vector<FunctionDecl *> Functions;
};

//===----------------------------------------------------------------------===//
// ASTContext
//===----------------------------------------------------------------------===//

/// Arena owning every AST node of one tree, plus its TypeContext. Nodes
/// hold raw non-owning pointers to each other; nothing is freed until the
/// context dies.
class ASTContext {
public:
  ASTContext() = default;
  ASTContext(const ASTContext &) = delete;
  ASTContext &operator=(const ASTContext &) = delete;

  TypeContext &types() { return Types; }
  const TypeContext &types() const { return Types; }

  /// Allocates a node of type \p T in this arena.
  template <typename T, typename... ArgTs> T *create(ArgTs &&...Args) {
    auto Node = std::make_unique<T>(std::forward<ArgTs>(Args)...);
    T *Raw = Node.get();
    if constexpr (std::is_base_of_v<Stmt, T>)
      Stmts.push_back(
          std::unique_ptr<Stmt, void (*)(Stmt *)>(Node.release(), deleter<T>));
    else
      Decls.push_back(
          std::unique_ptr<Decl, void (*)(Decl *)>(Node.release(), deleter<T>));
    return Raw;
  }

  TranslationUnit &translationUnit() { return TU; }
  const TranslationUnit &translationUnit() const { return TU; }

  //===--------------------------------------------------------------------===//
  // Convenience factories used heavily by the fusion passes.
  //===--------------------------------------------------------------------===//

  IntLiteralExpr *intLit(int64_t Value);
  DeclRefExpr *ref(VarDecl *D);
  BinaryExpr *binOp(BinaryOpKind Op, Expr *LHS, Expr *RHS);
  ExprStmt *assignStmt(Expr *LHS, Expr *RHS);

private:
  // Stmt and Decl have protected non-virtual destructors; delete through
  // the concrete type captured at creation time.
  template <typename T, typename Base> static void deleterImpl(Base *P) {
    delete static_cast<T *>(P);
  }
  template <typename T> static void deleter(Stmt *P) {
    deleterImpl<T, Stmt>(P);
  }
  template <typename T> static void deleter(Decl *P) {
    deleterImpl<T, Decl>(P);
  }

  TypeContext Types;
  TranslationUnit TU;
  std::vector<std::unique_ptr<Stmt, void (*)(Stmt *)>> Stmts;
  std::vector<std::unique_ptr<Decl, void (*)(Decl *)>> Decls;
};

} // namespace hfuse::cuda

#endif // HFUSE_CUDALANG_AST_H
