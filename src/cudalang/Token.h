//===-- cudalang/Token.h - CuLite tokens ------------------------*- C++ -*-===//
//
// Part of the HFuse reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds and the Token value type produced by the CuLite lexer.
/// CuLite is the C-like CUDA dialect accepted by this reproduction of the
/// HFuse source-to-source compiler (see DESIGN.md §2).
///
//===----------------------------------------------------------------------===//

#ifndef HFUSE_CUDALANG_TOKEN_H
#define HFUSE_CUDALANG_TOKEN_H

#include "support/SourceLocation.h"

#include <cstdint>
#include <string>
#include <string_view>

namespace hfuse::cuda {

enum class TokenKind : uint8_t {
  Eof,
  Identifier,
  IntLiteral,
  FloatLiteral,
  StringLiteral,

  // Keywords.
  KwVoid,
  KwBool,
  KwChar,
  KwInt,
  KwUnsigned,
  KwLong,
  KwFloat,
  KwDouble,
  KwConst,
  KwIf,
  KwElse,
  KwFor,
  KwWhile,
  KwDo,
  KwReturn,
  KwBreak,
  KwContinue,
  KwGoto,
  KwTrue,
  KwFalse,
  KwExtern,
  KwAsm,
  KwVolatile,
  KwGlobalAttr,  // __global__
  KwDeviceAttr,  // __device__
  KwSharedAttr,  // __shared__
  KwRestrict,    // __restrict__
  // Fixed-width typedef keywords (treated as builtin types).
  KwInt32T,
  KwUInt32T,
  KwInt64T,
  KwUInt64T,

  // Punctuation and operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semi,
  Comma,
  Colon,
  Question,
  Dot,
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Amp,
  Pipe,
  Caret,
  Tilde,
  Exclaim,
  Less,
  Greater,
  LessLess,
  GreaterGreater,
  LessEqual,
  GreaterEqual,
  EqualEqual,
  ExclaimEqual,
  AmpAmp,
  PipePipe,
  Equal,
  PlusEqual,
  MinusEqual,
  StarEqual,
  SlashEqual,
  PercentEqual,
  LessLessEqual,
  GreaterGreaterEqual,
  AmpEqual,
  PipeEqual,
  CaretEqual,
  PlusPlus,
  MinusMinus,
};

/// Returns a human-readable spelling for diagnostics ("'<<='", "identifier").
const char *tokenKindName(TokenKind Kind);

/// One lexed token. \c Text views into the lexer's source buffer and stays
/// valid as long as that buffer does.
struct Token {
  TokenKind Kind = TokenKind::Eof;
  SourceLocation Loc;
  std::string_view Text;

  // Literal payloads.
  uint64_t IntValue = 0;
  bool IntIsUnsigned = false;
  bool IntIs64 = false;
  double FloatValue = 0.0;
  bool FloatIsDouble = false;
  std::string StringValue; // decoded contents of a string literal

  bool is(TokenKind K) const { return Kind == K; }
  bool isNot(TokenKind K) const { return Kind != K; }
};

} // namespace hfuse::cuda

#endif // HFUSE_CUDALANG_TOKEN_H
