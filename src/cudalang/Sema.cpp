//===-- cudalang/Sema.cpp - CuLite semantic analysis ----------------------===//
//
// Part of the HFuse reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "cudalang/Sema.h"

#include "support/StringUtils.h"

using namespace hfuse;
using namespace hfuse::cuda;

//===----------------------------------------------------------------------===//
// Scopes
//===----------------------------------------------------------------------===//

void Sema::pushScope() { Scopes.emplace_back(); }

void Sema::popScope() {
  assert(!Scopes.empty() && "scope stack underflow");
  Scopes.pop_back();
}

bool Sema::declare(VarDecl *D) {
  assert(!Scopes.empty() && "declaration outside any scope");
  auto [It, Inserted] = Scopes.back().emplace(D->name(), D);
  (void)It;
  if (!Inserted) {
    Diags.error(D->loc(),
                formatString("redefinition of '%s'", D->name().c_str()));
    return false;
  }
  return true;
}

VarDecl *Sema::lookup(const std::string &Name) const {
  for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
    auto Found = It->find(Name);
    if (Found != It->end())
      return Found->second;
  }
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Entry points
//===----------------------------------------------------------------------===//

bool Sema::run() {
  unsigned ErrorsBefore = Diags.errorCount();
  for (FunctionDecl *F : Ctx.translationUnit().functions())
    runOnFunction(F);
  return Diags.errorCount() == ErrorsBefore;
}

bool Sema::runOnFunction(FunctionDecl *F) {
  unsigned ErrorsBefore = Diags.errorCount();
  CurFn = F;
  LoopDepth = 0;
  Labels.clear();
  Scopes.clear();
  pushScope();

  if (F->isKernel() && !F->returnType()->isVoid())
    Diags.error(F->loc(), "__global__ kernel must return void");

  for (VarDecl *P : F->params())
    declare(P);

  collectLabels(F->body());
  visitCompound(F->body());
  resolveGotos(F->body());

  popScope();
  CurFn = nullptr;
  return Diags.errorCount() == ErrorsBefore;
}

//===----------------------------------------------------------------------===//
// Labels
//===----------------------------------------------------------------------===//

void Sema::collectLabels(Stmt *S) {
  if (!S)
    return;
  if (auto *L = dyn_cast<LabelStmt>(S)) {
    auto [It, Inserted] = Labels.emplace(L->name(), L);
    (void)It;
    if (!Inserted)
      Diags.error(L->loc(), formatString("redefinition of label '%s'",
                                         L->name().c_str()));
    collectLabels(L->sub());
    return;
  }
  if (auto *C = dyn_cast<CompoundStmt>(S)) {
    for (Stmt *Sub : C->body())
      collectLabels(Sub);
    return;
  }
  if (auto *I = dyn_cast<IfStmt>(S)) {
    collectLabels(I->thenStmt());
    collectLabels(I->elseStmt());
    return;
  }
  if (auto *Fo = dyn_cast<ForStmt>(S)) {
    collectLabels(Fo->body());
    return;
  }
  if (auto *W = dyn_cast<WhileStmt>(S)) {
    collectLabels(W->body());
    return;
  }
}

void Sema::resolveGotos(Stmt *S) {
  if (!S)
    return;
  if (auto *G = dyn_cast<GotoStmt>(S)) {
    auto It = Labels.find(G->label());
    if (It == Labels.end()) {
      Diags.error(G->loc(),
                  formatString("use of undeclared label '%s'",
                               G->label().c_str()));
      return;
    }
    G->setTarget(It->second);
    return;
  }
  if (auto *L = dyn_cast<LabelStmt>(S)) {
    resolveGotos(L->sub());
    return;
  }
  if (auto *C = dyn_cast<CompoundStmt>(S)) {
    for (Stmt *Sub : C->body())
      resolveGotos(Sub);
    return;
  }
  if (auto *I = dyn_cast<IfStmt>(S)) {
    resolveGotos(I->thenStmt());
    resolveGotos(I->elseStmt());
    return;
  }
  if (auto *Fo = dyn_cast<ForStmt>(S)) {
    resolveGotos(Fo->body());
    return;
  }
  if (auto *W = dyn_cast<WhileStmt>(S)) {
    resolveGotos(W->body());
    return;
  }
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

void Sema::visitStmt(Stmt *S) {
  if (!S)
    return;
  switch (S->kind()) {
  case StmtKind::Compound:
    pushScope();
    visitCompound(cast<CompoundStmt>(S));
    popScope();
    return;
  case StmtKind::Decl:
    visitDeclStmt(cast<DeclStmt>(S));
    return;
  case StmtKind::ExprStmtKind: {
    auto *ES = cast<ExprStmt>(S);
    if (Expr *E = ES->expr())
      ES->setExpr(visitExpr(E));
    return;
  }
  case StmtKind::If: {
    auto *I = cast<IfStmt>(S);
    I->setCond(visitExpr(I->cond()));
    checkScalarCondition(I->cond(), "if condition");
    visitStmt(I->thenStmt());
    visitStmt(I->elseStmt());
    return;
  }
  case StmtKind::For: {
    auto *F = cast<ForStmt>(S);
    pushScope();
    visitStmt(F->init());
    if (F->cond()) {
      F->setCond(visitExpr(F->cond()));
      checkScalarCondition(F->cond(), "for-loop condition");
    }
    if (F->inc())
      F->setInc(visitExpr(F->inc()));
    ++LoopDepth;
    visitStmt(F->body());
    --LoopDepth;
    popScope();
    return;
  }
  case StmtKind::While: {
    auto *W = cast<WhileStmt>(S);
    W->setCond(visitExpr(W->cond()));
    checkScalarCondition(W->cond(), "while condition");
    ++LoopDepth;
    visitStmt(W->body());
    --LoopDepth;
    return;
  }
  case StmtKind::Return: {
    auto *R = cast<ReturnStmt>(S);
    const Type *RetTy = CurFn->returnType();
    if (R->value()) {
      if (RetTy->isVoid()) {
        Diags.error(R->loc(), "void function cannot return a value");
        return;
      }
      Expr *V = decay(visitExpr(R->value()));
      R->setValue(implicitConvert(V, RetTy));
    } else if (!RetTy->isVoid()) {
      Diags.error(R->loc(), "non-void function must return a value");
    }
    return;
  }
  case StmtKind::Break:
  case StmtKind::Continue:
    if (LoopDepth == 0)
      Diags.error(S->loc(), "break/continue outside of a loop");
    return;
  case StmtKind::Goto:
  case StmtKind::Asm:
    return;
  case StmtKind::Label: {
    auto *L = cast<LabelStmt>(S);
    visitStmt(L->sub());
    return;
  }
  default:
    // An expression used directly as a statement node should not happen;
    // expressions are always wrapped in ExprStmt.
    assert(!isa<Expr>(S) && "bare expression in statement position");
    return;
  }
}

void Sema::visitCompound(CompoundStmt *S) {
  for (Stmt *Sub : S->body())
    visitStmt(Sub);
}

void Sema::visitDeclStmt(DeclStmt *S) {
  for (VarDecl *V : S->decls()) {
    if (V->isShared() && V->init())
      Diags.error(V->loc(), "__shared__ variables cannot have initializers");
    if (V->init()) {
      Expr *Init = visitExpr(V->init());
      Init = decay(Init);
      Init = implicitConvert(Init, V->type());
      V->setInit(Init);
    }
    declare(V);
  }
}

//===----------------------------------------------------------------------===//
// Conversions
//===----------------------------------------------------------------------===//

/// Conversion rank for usual arithmetic conversions.
static int typeRank(const Type *T) {
  switch (T->kind()) {
  case TypeKind::Bool:
    return 0;
  case TypeKind::Char:
    return 1;
  case TypeKind::UChar:
    return 2;
  case TypeKind::Int:
    return 3;
  case TypeKind::UInt:
    return 4;
  case TypeKind::Long:
    return 5;
  case TypeKind::ULong:
    return 6;
  case TypeKind::Float:
    return 7;
  case TypeKind::Double:
    return 8;
  default:
    return -1;
  }
}

const Type *Sema::promote(const Type *T) const {
  // Integer promotion: everything below int computes as int.
  if (typeRank(T) >= 0 && typeRank(T) < typeRank(Ctx.types().intTy()))
    return Ctx.types().intTy();
  return T;
}

const Type *Sema::usualArithmeticType(const Type *L, const Type *R) const {
  L = promote(L);
  R = promote(R);
  return typeRank(L) >= typeRank(R) ? L : R;
}

Expr *Sema::decay(Expr *E) {
  if (!E->type() || !E->type()->isArray())
    return E;
  const Type *PtrTy = Ctx.types().pointerTo(E->type()->element());
  auto *C = Ctx.create<CastExpr>(E->loc(), PtrTy, E, /*IsImplicit=*/true);
  C->setType(PtrTy);
  return C;
}

Expr *Sema::implicitConvert(Expr *E, const Type *To) {
  const Type *From = E->type();
  if (!From || From == To)
    return E;
  bool OkScalar = From->isArithmetic() && To->isArithmetic();
  bool OkPointer = From->isPointer() && To->isPointer();
  if (!OkScalar && !OkPointer) {
    Diags.error(E->loc(),
                formatString("cannot convert '%s' to '%s'",
                             From->str().c_str(), To->str().c_str()));
    return E;
  }
  auto *C = Ctx.create<CastExpr>(E->loc(), To, E, /*IsImplicit=*/true);
  C->setType(To);
  return C;
}

bool Sema::checkScalarCondition(Expr *E, const char *What) {
  if (!E->type())
    return false;
  if (E->type()->isScalar())
    return true;
  Diags.error(E->loc(), formatString("%s is not a scalar value", What));
  return false;
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

Expr *Sema::visitExpr(Expr *E) {
  assert(E && "visiting null expression");
  switch (E->kind()) {
  case StmtKind::IntLiteral: {
    auto *I = cast<IntLiteralExpr>(E);
    const Type *Ty;
    if (I->is64())
      Ty = I->isUnsigned() ? Ctx.types().ulongTy() : Ctx.types().longTy();
    else
      Ty = I->isUnsigned() ? Ctx.types().uintTy() : Ctx.types().intTy();
    I->setType(Ty);
    return I;
  }
  case StmtKind::FloatLiteral: {
    auto *F = cast<FloatLiteralExpr>(E);
    F->setType(F->isDouble() ? Ctx.types().doubleTy()
                             : Ctx.types().floatTy());
    return F;
  }
  case StmtKind::BoolLiteral:
    E->setType(Ctx.types().boolTy());
    return E;
  case StmtKind::DeclRef:
    return visitDeclRef(cast<DeclRefExpr>(E));
  case StmtKind::BuiltinIdx:
    E->setType(Ctx.types().uintTy());
    return E;
  case StmtKind::Unary:
    return visitUnary(cast<UnaryExpr>(E));
  case StmtKind::Binary:
    return visitBinary(cast<BinaryExpr>(E));
  case StmtKind::Conditional:
    return visitConditional(cast<ConditionalExpr>(E));
  case StmtKind::Call:
    return visitCall(cast<CallExpr>(E));
  case StmtKind::Cast:
    return visitCast(cast<CastExpr>(E));
  case StmtKind::Index:
    return visitIndex(cast<IndexExpr>(E));
  case StmtKind::Paren: {
    auto *P = cast<ParenExpr>(E);
    P->setSub(visitExpr(P->sub()));
    P->setType(P->sub()->type());
    P->setIsLValue(P->sub()->isLValue());
    return P;
  }
  default:
    assert(false && "unknown expression kind in Sema");
    return E;
  }
}

Expr *Sema::visitDeclRef(DeclRefExpr *E) {
  VarDecl *D = lookup(E->name());
  if (!D) {
    Diags.error(E->loc(), formatString("use of undeclared identifier '%s'",
                                       E->name().c_str()));
    E->setType(Ctx.types().intTy()); // error recovery
    return E;
  }
  E->setDecl(D);
  E->setType(D->type());
  E->setIsLValue(!D->type()->isArray());
  return E;
}

Expr *Sema::visitUnary(UnaryExpr *E) {
  Expr *Sub = visitExpr(E->sub());
  E->setSub(Sub);
  const Type *SubTy = Sub->type();
  switch (E->op()) {
  case UnaryOpKind::Plus:
  case UnaryOpKind::Minus: {
    Sub = decay(Sub);
    if (!Sub->type()->isArithmetic()) {
      Diags.error(E->loc(), "unary +/- requires an arithmetic operand");
      E->setType(SubTy);
      return E;
    }
    const Type *Ty = promote(Sub->type());
    Sub = implicitConvert(Sub, Ty);
    E->setSub(Sub);
    E->setType(Ty);
    return E;
  }
  case UnaryOpKind::LogicalNot:
    E->setType(Ctx.types().boolTy());
    return E;
  case UnaryOpKind::BitNot: {
    if (!SubTy->isInteger() && !SubTy->isBool()) {
      Diags.error(E->loc(), "'~' requires an integer operand");
      E->setType(SubTy);
      return E;
    }
    const Type *Ty = promote(SubTy);
    E->setSub(implicitConvert(Sub, Ty));
    E->setType(Ty);
    return E;
  }
  case UnaryOpKind::PreInc:
  case UnaryOpKind::PreDec:
  case UnaryOpKind::PostInc:
  case UnaryOpKind::PostDec:
    if (!Sub->isLValue())
      Diags.error(E->loc(), "increment/decrement requires an lvalue");
    if (!SubTy->isArithmetic() && !SubTy->isPointer())
      Diags.error(E->loc(),
                  "increment/decrement requires arithmetic or pointer type");
    E->setType(SubTy);
    return E;
  case UnaryOpKind::AddrOf:
    if (!Sub->isLValue())
      Diags.error(E->loc(), "cannot take the address of an rvalue");
    E->setType(Ctx.types().pointerTo(SubTy));
    return E;
  case UnaryOpKind::Deref: {
    Sub = decay(Sub);
    E->setSub(Sub);
    if (!Sub->type()->isPointer()) {
      Diags.error(E->loc(), "cannot dereference a non-pointer");
      E->setType(SubTy);
      return E;
    }
    E->setType(Sub->type()->element());
    E->setIsLValue(true);
    return E;
  }
  }
  return E;
}

Expr *Sema::visitBinary(BinaryExpr *E) {
  Expr *L = visitExpr(E->lhs());
  Expr *R = visitExpr(E->rhs());

  if (isAssignmentOp(E->op())) {
    if (!L->isLValue())
      Diags.error(E->loc(), "left side of assignment is not an lvalue");
    if (auto *Ref = dyn_cast<DeclRefExpr>(ignoreParensAndImplicitCasts(L)))
      if (Ref->decl() && Ref->decl()->isConst() && !Ref->decl()->isParam())
        Diags.error(E->loc(), formatString("cannot assign to const '%s'",
                                           Ref->decl()->name().c_str()));
    R = decay(R);
    if (E->op() == BinaryOpKind::Assign) {
      R = implicitConvert(R, L->type());
    } else if (E->op() == BinaryOpKind::ShlAssign ||
               E->op() == BinaryOpKind::ShrAssign) {
      // Shift amount keeps its own (integer) type.
      if (!R->type()->isInteger() && !R->type()->isBool())
        Diags.error(E->loc(), "shift amount must be an integer");
    } else if (L->type()->isPointer()) {
      // ptr += int
      if (!R->type()->isInteger())
        Diags.error(E->loc(), "pointer compound assignment requires integer");
    } else {
      // Compute in the common type; codegen converts back on store.
      const Type *Common = usualArithmeticType(L->type(), R->type());
      R = implicitConvert(R, Common);
    }
    E->setLHS(L);
    E->setRHS(R);
    E->setType(L->type());
    return E;
  }

  switch (E->op()) {
  case BinaryOpKind::LogicalAnd:
  case BinaryOpKind::LogicalOr:
    checkScalarCondition(L, "logical operand");
    checkScalarCondition(R, "logical operand");
    E->setLHS(L);
    E->setRHS(R);
    E->setType(Ctx.types().boolTy());
    return E;
  case BinaryOpKind::Comma:
    E->setLHS(L);
    E->setRHS(R);
    E->setType(R->type());
    return E;
  default:
    break;
  }

  L = decay(L);
  R = decay(R);

  // Pointer arithmetic.
  bool LPtr = L->type()->isPointer();
  bool RPtr = R->type()->isPointer();
  if (LPtr || RPtr) {
    switch (E->op()) {
    case BinaryOpKind::Add:
    case BinaryOpKind::Sub: {
      if (LPtr && RPtr) {
        Diags.error(E->loc(), "pointer-pointer arithmetic is not supported");
        E->setType(L->type());
      } else if (LPtr) {
        if (!R->type()->isInteger())
          Diags.error(E->loc(), "pointer offset must be an integer");
        E->setType(L->type());
      } else {
        if (E->op() == BinaryOpKind::Sub || !L->type()->isInteger())
          Diags.error(E->loc(), "invalid pointer arithmetic");
        E->setType(R->type());
      }
      E->setLHS(L);
      E->setRHS(R);
      return E;
    }
    case BinaryOpKind::Eq:
    case BinaryOpKind::Ne:
    case BinaryOpKind::Lt:
    case BinaryOpKind::Gt:
    case BinaryOpKind::Le:
    case BinaryOpKind::Ge:
      E->setLHS(L);
      E->setRHS(R);
      E->setType(Ctx.types().boolTy());
      return E;
    default:
      Diags.error(E->loc(), "invalid operands to binary expression");
      E->setLHS(L);
      E->setRHS(R);
      E->setType(L->type());
      return E;
    }
  }

  switch (E->op()) {
  case BinaryOpKind::Shl:
  case BinaryOpKind::Shr: {
    if (!L->type()->isInteger() && !L->type()->isBool())
      Diags.error(E->loc(), "shifted value must be an integer");
    if (!R->type()->isInteger() && !R->type()->isBool())
      Diags.error(E->loc(), "shift amount must be an integer");
    const Type *Ty = promote(L->type());
    L = implicitConvert(L, Ty);
    E->setLHS(L);
    E->setRHS(R);
    E->setType(Ty);
    return E;
  }
  case BinaryOpKind::Rem:
  case BinaryOpKind::BitAnd:
  case BinaryOpKind::BitOr:
  case BinaryOpKind::BitXor: {
    if (!L->type()->isInteger() && !L->type()->isBool())
      Diags.error(E->loc(), "integer operation on non-integer operand");
    if (!R->type()->isInteger() && !R->type()->isBool())
      Diags.error(E->loc(), "integer operation on non-integer operand");
    const Type *Ty = usualArithmeticType(L->type(), R->type());
    E->setLHS(implicitConvert(L, Ty));
    E->setRHS(implicitConvert(R, Ty));
    E->setType(Ty);
    return E;
  }
  case BinaryOpKind::Add:
  case BinaryOpKind::Sub:
  case BinaryOpKind::Mul:
  case BinaryOpKind::Div: {
    if (!L->type()->isArithmetic() || !R->type()->isArithmetic()) {
      Diags.error(E->loc(), "arithmetic on non-arithmetic operand");
      E->setLHS(L);
      E->setRHS(R);
      E->setType(L->type());
      return E;
    }
    const Type *Ty = usualArithmeticType(L->type(), R->type());
    E->setLHS(implicitConvert(L, Ty));
    E->setRHS(implicitConvert(R, Ty));
    E->setType(Ty);
    return E;
  }
  case BinaryOpKind::Lt:
  case BinaryOpKind::Gt:
  case BinaryOpKind::Le:
  case BinaryOpKind::Ge:
  case BinaryOpKind::Eq:
  case BinaryOpKind::Ne: {
    if (!L->type()->isArithmetic() || !R->type()->isArithmetic()) {
      Diags.error(E->loc(), "comparison of non-arithmetic operands");
    } else {
      const Type *Ty = usualArithmeticType(L->type(), R->type());
      L = implicitConvert(L, Ty);
      R = implicitConvert(R, Ty);
    }
    E->setLHS(L);
    E->setRHS(R);
    E->setType(Ctx.types().boolTy());
    return E;
  }
  default:
    assert(false && "unhandled binary operator in Sema");
    return E;
  }
}

Expr *Sema::visitConditional(ConditionalExpr *E) {
  Expr *Cond = visitExpr(E->cond());
  checkScalarCondition(Cond, "conditional operand");
  Expr *T = decay(visitExpr(E->trueExpr()));
  Expr *F = decay(visitExpr(E->falseExpr()));

  const Type *Ty;
  if (T->type()->isPointer() && F->type()->isPointer()) {
    Ty = T->type();
  } else if (T->type()->isArithmetic() && F->type()->isArithmetic()) {
    Ty = usualArithmeticType(T->type(), F->type());
    T = implicitConvert(T, Ty);
    F = implicitConvert(F, Ty);
  } else {
    Diags.error(E->loc(), "incompatible operands in conditional expression");
    Ty = T->type();
  }
  // Store back; cond has no setter on purpose (never rewritten).
  E->setTrueExpr(T);
  E->setFalseExpr(F);
  E->setType(Ty);
  return E;
}

namespace {

/// Classification of a known intrinsic.
enum class IntrinsicKind {
  Syncthreads,
  ShflXor,
  ShflDown,
  AtomicAdd,
  MinMax,
  FMinMax,
  UnaryMathF, // sqrtf, fabsf, floorf, rsqrtf, __expf, __logf
};

struct IntrinsicInfo {
  IntrinsicKind Kind;
  unsigned NumArgs;
};

const IntrinsicInfo *lookupIntrinsic(const std::string &Name) {
  static const std::map<std::string, IntrinsicInfo> Table = {
      {"__syncthreads", {IntrinsicKind::Syncthreads, 0}},
      {"__shfl_xor_sync", {IntrinsicKind::ShflXor, 3}},
      {"__shfl_down_sync", {IntrinsicKind::ShflDown, 3}},
      {"atomicAdd", {IntrinsicKind::AtomicAdd, 2}},
      {"min", {IntrinsicKind::MinMax, 2}},
      {"max", {IntrinsicKind::MinMax, 2}},
      {"fminf", {IntrinsicKind::FMinMax, 2}},
      {"fmaxf", {IntrinsicKind::FMinMax, 2}},
      {"sqrtf", {IntrinsicKind::UnaryMathF, 1}},
      {"fabsf", {IntrinsicKind::UnaryMathF, 1}},
      {"floorf", {IntrinsicKind::UnaryMathF, 1}},
      {"rsqrtf", {IntrinsicKind::UnaryMathF, 1}},
      {"__expf", {IntrinsicKind::UnaryMathF, 1}},
      {"__logf", {IntrinsicKind::UnaryMathF, 1}},
  };
  auto It = Table.find(Name);
  return It == Table.end() ? nullptr : &It->second;
}

} // namespace

Expr *Sema::visitCall(CallExpr *E) {
  for (Expr *&Arg : E->args())
    Arg = decay(visitExpr(Arg));

  if (const IntrinsicInfo *Info = lookupIntrinsic(E->callee())) {
    if (E->args().size() != Info->NumArgs) {
      Diags.error(E->loc(),
                  formatString("intrinsic '%s' expects %u arguments, got %zu",
                               E->callee().c_str(), Info->NumArgs,
                               E->args().size()));
      E->setType(Ctx.types().intTy());
      return E;
    }
    switch (Info->Kind) {
    case IntrinsicKind::Syncthreads:
      E->setType(Ctx.types().voidTy());
      return E;
    case IntrinsicKind::ShflXor:
    case IntrinsicKind::ShflDown: {
      Expr *&Val = E->args()[1];
      if (!Val->type()->isArithmetic())
        Diags.error(E->loc(), "shuffle value must be arithmetic");
      E->setType(Val->type());
      return E;
    }
    case IntrinsicKind::AtomicAdd: {
      Expr *&Ptr = E->args()[0];
      Expr *&Val = E->args()[1];
      if (!Ptr->type()->isPointer()) {
        Diags.error(E->loc(), "atomicAdd address must be a pointer");
        E->setType(Ctx.types().intTy());
        return E;
      }
      const Type *Elem = Ptr->type()->element();
      Val = implicitConvert(Val, Elem);
      E->setType(Elem);
      return E;
    }
    case IntrinsicKind::MinMax: {
      Expr *&A = E->args()[0];
      Expr *&B = E->args()[1];
      if (!A->type()->isInteger() || !B->type()->isInteger())
        Diags.error(E->loc(), "min/max requires integer operands");
      const Type *Ty = usualArithmeticType(A->type(), B->type());
      A = implicitConvert(A, Ty);
      B = implicitConvert(B, Ty);
      E->setType(Ty);
      return E;
    }
    case IntrinsicKind::FMinMax: {
      Expr *&A = E->args()[0];
      Expr *&B = E->args()[1];
      A = implicitConvert(A, Ctx.types().floatTy());
      B = implicitConvert(B, Ctx.types().floatTy());
      E->setType(Ctx.types().floatTy());
      return E;
    }
    case IntrinsicKind::UnaryMathF: {
      Expr *&A = E->args()[0];
      A = implicitConvert(A, Ctx.types().floatTy());
      E->setType(Ctx.types().floatTy());
      return E;
    }
    }
  }

  // A user-defined __device__ function.
  FunctionDecl *Callee = Ctx.translationUnit().findFunction(E->callee());
  if (!Callee) {
    Diags.error(E->loc(), formatString("call to unknown function '%s'",
                                       E->callee().c_str()));
    E->setType(Ctx.types().intTy());
    return E;
  }
  if (Callee->isKernel())
    Diags.error(E->loc(), "cannot call a __global__ kernel from device code");
  if (Callee == CurFn)
    Diags.error(E->loc(), "recursive calls are not supported (HFuse inlines "
                          "all device functions)");
  if (E->args().size() != Callee->params().size()) {
    Diags.error(E->loc(),
                formatString("function '%s' expects %zu arguments, got %zu",
                             E->callee().c_str(), Callee->params().size(),
                             E->args().size()));
  } else {
    for (size_t I = 0; I < E->args().size(); ++I)
      E->args()[I] = implicitConvert(E->args()[I],
                                     Callee->params()[I]->type());
  }
  E->setCalleeDecl(Callee);
  E->setType(Callee->returnType());
  return E;
}

Expr *Sema::visitCast(CastExpr *E) {
  assert(!E->isImplicit() && "Sema must not revisit implicit casts");
  Expr *Sub = decay(visitExpr(E->sub()));
  E->setSub(Sub);
  const Type *From = Sub->type();
  const Type *To = E->destType();
  bool Ok = (From->isScalar() && To->isArithmetic()) ||
            (From->isPointer() && To->isPointer()) ||
            (From->isInteger() && To->isPointer());
  if (!Ok)
    Diags.error(E->loc(), formatString("invalid cast from '%s' to '%s'",
                                       From->str().c_str(),
                                       To->str().c_str()));
  E->setType(To);
  return E;
}

Expr *Sema::visitIndex(IndexExpr *E) {
  Expr *Base = visitExpr(E->base());
  Expr *Idx = visitExpr(E->index());
  const Type *BaseTy = Base->type();
  const Type *Elem = nullptr;
  if (BaseTy->isArray()) {
    Elem = BaseTy->element();
  } else {
    Base = decay(Base);
    if (Base->type()->isPointer()) {
      Elem = Base->type()->element();
    } else {
      Diags.error(E->loc(), "subscripted value is not a pointer or array");
      Elem = Ctx.types().intTy();
    }
  }
  if (!Idx->type()->isInteger() && !Idx->type()->isBool())
    Diags.error(E->loc(), "array index must be an integer");
  E->setBase(Base);
  E->setIndex(Idx);
  E->setType(Elem);
  E->setIsLValue(!Elem->isArray());
  return E;
}
