//===-- service/SearchService.cpp - Search request lifecycle --------------===//
//
// Part of the HFuse reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/SearchService.h"

#include "support/Log.h"
#include "support/StringUtils.h"
#include "support/Telemetry.h"

#include <atomic>
#include <chrono>
#include <csignal>

using namespace hfuse;
using namespace hfuse::service;

namespace {

/// Process-wide drain flag. A signal handler may only touch
/// async-signal-safe state; a lock-free atomic store qualifies, so the
/// handler sets this and a watcher thread turns it into shutdown().
std::atomic<bool> GShutdownRequested{false};

void signalHandler(int) { SearchService::requestShutdown(); }

} // namespace

void SearchService::requestShutdown() {
  GShutdownRequested.store(true, std::memory_order_relaxed);
}

bool SearchService::shutdownRequested() {
  return GShutdownRequested.load(std::memory_order_relaxed);
}

void SearchService::installSignalHandlers() {
  std::signal(SIGTERM, signalHandler);
  std::signal(SIGINT, signalHandler);
}

SearchService::SearchService(Config C) : Cfg(std::move(C)) {
  if (Cfg.Workers < 1)
    Cfg.Workers = 1;
  if (Cfg.MaxQueue < 0)
    Cfg.MaxQueue = 0;
  if (Cfg.WatchSignals)
    Watcher = std::thread([this] {
      for (;;) {
        {
          std::lock_guard<std::mutex> Lock(Mu);
          if (StopWatcher || Draining)
            return;
        }
        if (shutdownRequested()) {
          logInfo("service: shutdown requested (signal); draining");
          shutdown();
          return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    });
}

SearchService::~SearchService() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    StopWatcher = true;
  }
  shutdown();
  if (Watcher.joinable())
    Watcher.join();
}

bool SearchService::shuttingDown() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Draining;
}

SearchService::Stats SearchService::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return St;
}

std::string SearchService::fingerprint(const SearchRequest &R) {
  const profile::PairRunner::Options &O = R.Runner;
  // Everything the search result is a pure function of. Two requests
  // with equal fingerprints would produce bit-identical SearchResults,
  // so the later one may join the earlier one's execution. N-way
  // requests prefix the full kernel list (and ignore A/B/Scale2, which
  // the N-way runner never reads).
  std::string Kernels;
  for (kernels::BenchKernelId Id : R.Kernels)
    Kernels += formatString("%d+", static_cast<int>(Id));
  return formatString(
      "[%s]%d+%d|n%d|%s|sms%d|s%.6f/%.6f|v%d|pb%d|l2%d|st%d|seed%u|j%d|p%d|"
      "b%d|m%.4f|mb%d|w%llu|t%llu|c%d|$%p",
      Kernels.c_str(), static_cast<int>(R.A), static_cast<int>(R.B),
      R.NaiveEvenSplit ? 1 : 0, O.Arch.Name.c_str(), O.SimSMs, O.Scale1,
      O.Scale2, O.Verify ? 1 : 0, O.UsePartialBarriers ? 1 : 0,
      O.ModelL2 ? 1 : 0, static_cast<int>(O.SearchStats), O.Seed,
      O.SearchJobs, O.PruneLevel, static_cast<int>(O.Budget),
      O.BudgetMarginPct, O.MeasuredBound ? 1 : 0,
      static_cast<unsigned long long>(O.WatchdogCycles),
      static_cast<unsigned long long>(O.WallTimeoutMs),
      O.UseCompileCache ? 1 : 0, static_cast<const void *>(O.Cache.get()));
}

SearchOutcome SearchService::execute(const SearchRequest &R,
                                     const CancellationToken &Token) {
  SearchOutcome Out;
  profile::PairRunner::Options RO = R.Runner;
  RO.Cancel = Token;
  if (!RO.Cache && Cfg.Cache)
    RO.Cache = Cfg.Cache;
  if (Cfg.MaxJobsPerRequest > 0 &&
      (RO.SearchJobs <= 0 || RO.SearchJobs > Cfg.MaxJobsPerRequest))
    RO.SearchJobs = Cfg.MaxJobsPerRequest;

  if (R.Kernels.size() >= 3) {
    // N-way portfolio request: same lifecycle, NWayRunner underneath.
    profile::NWayRunner::Options NO;
    static_cast<profile::SearchOptions &>(NO) =
        static_cast<const profile::SearchOptions &>(RO);
    NO.Scale = RO.Scale1;
    profile::NWayRunner Runner(R.Kernels, std::move(NO));
    if (!Runner.ok()) {
      Out.Search.Err = Token.cancelled()
                           ? Token.status()
                           : Status(ErrorCode::Internal, Runner.error());
      Out.Search.Error = Runner.error();
      return Out;
    }
    Out.NWay = Runner.searchBestConfig();
    // Mirror the lifecycle fields so callers (and the service's own
    // Partial accounting below) read one place regardless of arity.
    Out.Search.Ok = Out.NWay->Ok;
    Out.Search.RunId = Out.NWay->RunId;
    Out.Search.Error = Out.NWay->Error;
    Out.Search.Err = Out.NWay->Err;
    Out.Search.Partial = Out.NWay->Partial;
    Out.Search.PartialReason = Out.NWay->PartialReason;
    Out.Search.Stats = Out.NWay->Stats;
    if (!Token.cancelled()) {
      Out.NativeBaseline = Runner.runNative();
      if (Out.NWay->Ok)
        Out.SerialBaseline = Runner.runSerial();
    }
    return Out;
  }

  profile::PairRunner Runner(R.A, R.B, std::move(RO));
  if (!Runner.ok()) {
    // A cancel that landed during input-kernel compilation is a
    // request verdict; anything else is a genuine setup failure.
    Out.Search.Err = Token.cancelled()
                         ? Token.status()
                         : Status(ErrorCode::Internal, Runner.error());
    Out.Search.Error = Runner.error();
    return Out;
  }
  Out.Search = Runner.searchBestConfig(R.NaiveEvenSplit);
  // Graceful degradation: a failed (not cancelled) search still
  // answers with the native unfused baseline.
  if (!Out.Search.Ok && !Token.cancelled())
    Out.NativeBaseline = Runner.runNative();
  return Out;
}

Expected<SearchOutcome> SearchService::search(const SearchRequest &R) {
  // Compose the request's effective token: the caller's handle if one
  // was supplied (so their cancel() reaches the run), upgraded to a
  // live private one otherwise, with the deadline armed on top. The
  // first armed deadline wins, so a caller token that already carries
  // one keeps it.
  CancellationToken Token =
      R.Cancel.valid() ? R.Cancel : CancellationToken::make();
  if (R.DeadlineMs)
    Token.armDeadlineMs(R.DeadlineMs);

  // Only requests with no private lifecycle are dedupable: a caller
  // token or deadline makes the run's Partial behavior caller-specific.
  const bool Dedupable = !R.Cancel.valid() && R.DeadlineMs == 0;
  const std::string FP = Dedupable ? fingerprint(R) : std::string();

  std::promise<std::shared_ptr<SearchOutcome>> Promise;
  {
    std::unique_lock<std::mutex> Lock(Mu);
    if (Draining) {
      ++St.RejectedDrain;
      return Status::transient(ErrorCode::Cancelled,
                               "service draining: request rejected");
    }
    if (Dedupable) {
      auto It = InFlight.find(FP);
      if (It != InFlight.end()) {
        Future F = It->second;
        ++St.Deduped;
        HFUSE_METRIC_ADD("service.deduped", 1);
        Lock.unlock();
        return *F.get();
      }
    }
    // Admission control: reject when the request would have to wait
    // and the wait line is already full. Waiting = admitted tickets
    // not yet running.
    const uint64_t Waiting = NextTicket - NextToRun;
    const bool WouldWait = Active >= Cfg.Workers || Waiting > 0;
    if (WouldWait && Waiting >= static_cast<uint64_t>(Cfg.MaxQueue)) {
      ++St.RejectedFull;
      HFUSE_METRIC_ADD("service.rejected_full", 1);
      return Status::transient(
          ErrorCode::QueueFull,
          formatString("admission queue full (%d waiting, %d executing)",
                       static_cast<int>(Waiting), Active));
    }
    const uint64_t Ticket = NextTicket++;
    ++St.Admitted;
    HFUSE_METRIC_ADD("service.admitted", 1);
    // Strict FIFO: a ticket runs only when every earlier ticket has
    // started and a worker slot is free — admission order is execution
    // order regardless of thread wake-up timing.
    Cv.wait(Lock, [&] {
      return Draining || (Ticket == NextToRun && Active < Cfg.Workers);
    });
    if (Draining) {
      ++St.RejectedDrain;
      HFUSE_METRIC_ADD("service.rejected_drain", 1);
      return Status::transient(ErrorCode::Cancelled,
                               "service draining: queued request cancelled");
    }
    ++NextToRun;
    ++Active;
    InFlightTokens.push_back(Token);
    if (Dedupable)
      InFlight.emplace(FP, Promise.get_future().share());
    Cv.notify_all();
  }

  auto Out = std::make_shared<SearchOutcome>(execute(R, Token));
  Promise.set_value(Out);

  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Dedupable)
      InFlight.erase(FP);
    // Remove this request's registered handle (tokens have no identity
    // beyond their shared state; compare the control blocks).
    for (auto It = InFlightTokens.begin(); It != InFlightTokens.end(); ++It) {
      if (It->sameStateAs(Token)) {
        InFlightTokens.erase(It);
        break;
      }
    }
    --Active;
    ++St.Completed;
    if (Out->Search.Partial)
      ++St.Partial;
    HFUSE_METRIC_ADD("service.completed", 1);
    if (Out->Search.Partial)
      HFUSE_METRIC_ADD("service.partial", 1);
    Cv.notify_all();
  }
  return *Out;
}

void SearchService::shutdown() {
  std::vector<CancellationToken> ToCancel;
  {
    std::unique_lock<std::mutex> Lock(Mu);
    if (!Draining) {
      Draining = true;
      logInfo("service: draining (%d executing, %llu queued)", Active,
              static_cast<unsigned long long>(NextTicket - NextToRun));
      Cv.notify_all();
    }
    // Grace period: let in-flight searches finish naturally before
    // firing their tokens.
    if (Cfg.DrainGraceMs && Active > 0)
      Cv.wait_for(Lock, std::chrono::milliseconds(Cfg.DrainGraceMs),
                  [&] { return Active == 0; });
    ToCancel = InFlightTokens;
  }
  for (const CancellationToken &T : ToCancel)
    T.cancel();
  {
    std::unique_lock<std::mutex> Lock(Mu);
    Cv.wait(Lock, [&] { return Active == 0; });
  }
  // In-flight work has wound down to its (possibly partial) results;
  // detach the store so nothing writes past this point. Every put()
  // was already durable (temp + fsync + rename), so detaching IS the
  // flush.
  if (Cfg.Cache)
    Cfg.Cache->attachStore(nullptr);
}
