//===-- service/SearchService.h - Search request lifecycle ------*- C++ -*-===//
//
// Part of the HFuse reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The reusable entry point for the Figure 6 configuration search:
/// request struct in, Expected<SearchOutcome> out. hfusec is one thin
/// client; tests and an eventual fusion-as-a-service daemon are others.
/// The service owns the request *lifecycle* that the bare PairRunner
/// does not:
///
///  - admission control: a bounded queue in front of a fixed worker
///    budget. Requests beyond Config::MaxQueue are rejected
///    immediately with ErrorCode::QueueFull — deterministic
///    back-pressure instead of unbounded memory growth — and admitted
///    requests execute in strict FIFO admission order;
///  - per-request job caps: Config::MaxJobsPerRequest clamps a
///    request's SearchJobs so one greedy client cannot monopolize the
///    host;
///  - in-flight dedup: a request identical to one currently executing
///    (same pair, same options, and no private lifecycle — no caller
///    token, no deadline) joins the running search's future instead of
///    re-running it;
///  - deadlines and cancellation: DeadlineMs and/or a caller-supplied
///    CancellationToken are composed into one effective token threaded
///    through every phase (compile waits, prune loop, simulator
///    macro-progress checks). A fired token yields an *anytime* result
///    — SearchResult::Partial with the best-so-far incumbent and the
///    Unvisited ledger — not an exception and not a blocked thread;
///  - graceful drain: shutdown() (or a watched SIGTERM) stops
///    admitting, rejects everything still queued, gives in-flight
///    requests Config::DrainGraceMs to finish before firing their
///    tokens, waits for them to wind down to their partial results,
///    then detaches the ResultStore so its state is durable before the
///    process exits.
///
/// A request that runs with no deadline, no cancel, and no armed fault
/// site produces results bit-identical to calling
/// PairRunner::searchBestConfig directly — the service adds lifecycle,
/// never perturbs the search.
///
//===----------------------------------------------------------------------===//

#ifndef HFUSE_SERVICE_SEARCHSERVICE_H
#define HFUSE_SERVICE_SEARCHSERVICE_H

#include "profile/NWayRunner.h"
#include "profile/PairRunner.h"
#include "support/CancellationToken.h"
#include "support/Status.h"

#include <condition_variable>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace hfuse::service {

/// One search request: which pair, how to run it, and its lifecycle.
struct SearchRequest {
  kernels::BenchKernelId A{};
  kernels::BenchKernelId B{};
  /// N-way portfolio request: when this holds 3+ kernels the request
  /// runs the NWayRunner search over them and \p A / \p B are ignored
  /// (the lifecycle — admission, dedup, deadline, drain — is
  /// identical). Empty means the pair request above.
  std::vector<kernels::BenchKernelId> Kernels;
  /// Runner knobs (arch, scales, jobs, prune, budget, ...). A null
  /// Runner.Cache falls back to the service-wide Config::Cache so
  /// requests share compilations.
  profile::PairRunner::Options Runner;
  /// The Figure 7 "Naive" marker: even split, no register-bound trial.
  bool NaiveEvenSplit = false;
  /// Wall-clock deadline for the whole request, in milliseconds from
  /// admission (0 = none). Composed with \p Cancel into one token.
  uint64_t DeadlineMs = 0;
  /// Caller-held cancel handle (empty = none). The caller keeps a copy
  /// and may fire it any time; the request unwinds to its anytime
  /// result at the next candidate boundary.
  CancellationToken Cancel;
};

/// What a completed request returns.
struct SearchOutcome {
  /// The search result — possibly Partial (anytime), possibly !Ok.
  /// For an N-way request this mirrors NWay's lifecycle fields
  /// (Ok/Partial/Err/Error/RunId/Stats) so clients and the service's
  /// own accounting read one place; the candidate ledger lives in NWay.
  profile::SearchResult Search;
  /// The N-way result when the request carried 3+ kernels.
  std::optional<profile::NWaySearchResult> NWay;
  /// Graceful degradation: when the search failed outright
  /// (Search.Ok == false) for a reason other than cancellation, the
  /// native unfused baseline still answers "how fast without fusion".
  /// For healthy N-way runs it is always populated — the portfolio
  /// verdict needs the concurrent-streams baseline to compare against.
  std::optional<gpusim::SimResult> NativeBaseline;
  /// N-way only: the back-to-back sequential baseline (sum of solo
  /// runs), the second yardstick the fused winner must beat.
  std::optional<gpusim::SimResult> SerialBaseline;
};

class SearchService {
public:
  struct Config {
    /// Concurrent requests executing at once.
    int Workers = 1;
    /// Admitted-but-waiting requests beyond the executing ones; the
    /// next request is rejected with QueueFull.
    int MaxQueue = 8;
    /// Upper bound on any request's SearchJobs (0 = uncapped).
    /// Requests asking for more — or for "auto" (<= 0) — are clamped.
    int MaxJobsPerRequest = 0;
    /// Shared compile/simulation cache for requests whose options do
    /// not bring their own (null = one private cache per request).
    std::shared_ptr<profile::CompileCache> Cache;
    /// How long shutdown() lets in-flight requests finish naturally
    /// before firing their cancellation tokens. 0 = fire immediately
    /// (they still wind down to anytime results).
    uint64_t DrainGraceMs = 0;
    /// Poll the process-wide shutdown flag (set by requestShutdown(),
    /// e.g. from a SIGTERM handler) on a watcher thread and drain when
    /// it fires.
    bool WatchSignals = false;
  };

  explicit SearchService(Config C);
  /// Drains (shutdown()) before destruction.
  ~SearchService();
  SearchService(const SearchService &) = delete;
  SearchService &operator=(const SearchService &) = delete;

  /// Admission + execution, synchronous. Errors are lifecycle verdicts
  /// only: QueueFull (admission rejected) or Cancelled (rejected or
  /// evicted by a drain). A request that ran — even partially, even
  /// unsuccessfully, even one whose runner failed to construct —
  /// returns an ok() Expected whose SearchOutcome tells the full story.
  Expected<SearchOutcome> search(const SearchRequest &R);

  /// Stops admitting, cancels the queue, drains in-flight requests
  /// (grace period per Config::DrainGraceMs, then token fire), then
  /// detaches the store. Idempotent, thread-safe, callable while other
  /// threads are blocked in search().
  void shutdown();
  bool shuttingDown() const;

  /// Async-signal-safe shutdown trigger: sets a process-wide atomic
  /// flag. Services constructed with Config::WatchSignals observe it
  /// and drain. Call from a SIGTERM/SIGINT handler.
  static void requestShutdown();
  static bool shutdownRequested();
  /// Installs requestShutdown() as the SIGTERM (and SIGINT) handler.
  static void installSignalHandlers();

  struct Stats {
    uint64_t Admitted = 0;      ///< requests that entered the queue
    uint64_t RejectedFull = 0;  ///< QueueFull rejections
    uint64_t RejectedDrain = 0; ///< rejected/evicted by shutdown
    uint64_t Deduped = 0;       ///< joined an identical in-flight run
    uint64_t Completed = 0;     ///< executions that returned
    uint64_t Partial = 0;       ///< of those, anytime (Partial) results
  };
  Stats stats() const;

private:
  using Future = std::shared_future<std::shared_ptr<SearchOutcome>>;

  /// Deterministic fingerprint of everything the search result is a
  /// function of (used for in-flight dedup).
  static std::string fingerprint(const SearchRequest &R);

  /// Runs one admitted request (no queue interaction).
  SearchOutcome execute(const SearchRequest &R,
                        const CancellationToken &Token);

  Config Cfg;
  mutable std::mutex Mu;
  std::condition_variable Cv;
  bool Draining = false;
  uint64_t NextTicket = 0; ///< admission order: next ticket to hand out
  uint64_t NextToRun = 0;  ///< admission order: next ticket allowed to run
  int Active = 0;          ///< requests currently executing
  /// Tokens of executing requests, so a drain can fire them.
  std::vector<CancellationToken> InFlightTokens;
  /// In-flight dedup: fingerprint -> future of the running execution.
  std::map<std::string, Future> InFlight;
  Stats St;
  std::thread Watcher;
  bool StopWatcher = false;
};

} // namespace hfuse::service

#endif // HFUSE_SERVICE_SEARCHSERVICE_H
