//===-- transform/KernelInfo.cpp - Kernel resource analysis ---------------===//
//
// Part of the HFuse reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "transform/KernelInfo.h"

#include "transform/ASTWalker.h"
#include "transform/BarrierReplacer.h"
#include "transform/BuiltinReplacer.h"

using namespace hfuse;
using namespace hfuse::cuda;
using namespace hfuse::transform;

KernelResources hfuse::transform::analyzeKernel(const FunctionDecl *F) {
  KernelResources Res;
  auto *Body = const_cast<CompoundStmt *>(F->body());
  forEachStmt(Body, [&](Stmt *S) {
    auto *DS = dyn_cast<DeclStmt>(S);
    if (!DS)
      return;
    for (const VarDecl *V : DS->decls()) {
      if (!V->isShared())
        continue;
      if (V->isExternShared()) {
        Res.UsesExternShared = true;
        continue;
      }
      Res.StaticSharedBytes += V->type()->storeSize();
    }
  });
  Res.NumBarriers = countSyncthreads(Body);
  Res.UsesMultiDimBuiltins = usesMultiDimBuiltins(Body);
  return Res;
}
