//===-- transform/DeclLifter.cpp - Hoist local declarations ---------------===//
//
// Part of the HFuse reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "transform/DeclLifter.h"

#include "transform/ASTWalker.h"
#include "transform/Renamer.h"

using namespace hfuse;
using namespace hfuse::cuda;
using namespace hfuse::transform;

namespace {

class LifterImpl {
public:
  LifterImpl(ASTContext &Ctx, FunctionDecl *F) : Ctx(Ctx), F(F) {
    for (VarDecl *P : F->params())
      Names.reserve(P->name());
  }

  unsigned run() {
    CompoundStmt *Body = F->body();
    liftInCompound(Body);

    // Prepend one DeclStmt per lifted variable, preserving order.
    std::vector<Stmt *> NewBody;
    NewBody.reserve(Lifted.size() + Body->body().size());
    for (VarDecl *V : Lifted)
      NewBody.push_back(
          Ctx.create<DeclStmt>(V->loc(), std::vector<VarDecl *>{V}));
    NewBody.insert(NewBody.end(), Body->body().begin(), Body->body().end());
    Body->body() = std::move(NewBody);

    // Renaming may have changed decl names; sync reference spellings.
    rewriteAllExprs(Body, [](Expr *E) -> Expr * {
      if (auto *Ref = dyn_cast<DeclRefExpr>(E))
        if (Ref->decl())
          Ref->setName(Ref->decl()->name());
      return E;
    });
    return static_cast<unsigned>(Lifted.size());
  }

private:
  /// Registers \p V as lifted, renaming it if a previous lifted variable
  /// or parameter took its name (shadowing in the source). Const
  /// qualifiers are dropped: the initializer becomes a plain assignment
  /// at the original location, which a const local would reject.
  void registerVar(VarDecl *V) {
    V->setName(Names.freshName(V->name(), "_s"));
    V->setInit(nullptr);
    V->setConst(false);
    Lifted.push_back(V);
  }

  /// Turns the declaration group \p DS into a sequence of assignment
  /// statements (possibly empty) appended to \p Out.
  void lowerDeclStmt(DeclStmt *DS, std::vector<Stmt *> &Out) {
    for (VarDecl *V : DS->decls()) {
      Expr *Init = V->init();
      registerVar(V);
      if (Init)
        Out.push_back(Ctx.assignStmt(Ctx.ref(V), Init));
    }
  }

  /// Joins initializer assignments into one comma expression for
  /// for-init position; returns null when there is nothing to do.
  Expr *lowerDeclStmtToExpr(DeclStmt *DS) {
    Expr *Joined = nullptr;
    for (VarDecl *V : DS->decls()) {
      Expr *Init = V->init();
      registerVar(V);
      if (!Init)
        continue;
      Expr *Assign = Ctx.binOp(BinaryOpKind::Assign, Ctx.ref(V), Init);
      Joined = Joined ? Ctx.binOp(BinaryOpKind::Comma, Joined, Assign)
                      : Assign;
    }
    return Joined;
  }

  void liftInStmt(Stmt *S) {
    if (!S)
      return;
    switch (S->kind()) {
    case StmtKind::Compound:
      liftInCompound(cast<CompoundStmt>(S));
      return;
    case StmtKind::If: {
      auto *I = cast<IfStmt>(S);
      I->setThen(wrapIfDecl(I->thenStmt()));
      I->setElse(wrapIfDecl(I->elseStmt()));
      liftInStmt(I->thenStmt());
      liftInStmt(I->elseStmt());
      return;
    }
    case StmtKind::For: {
      auto *Fo = cast<ForStmt>(S);
      if (auto *DS = dyn_cast_or_null<DeclStmt>(Fo->init())) {
        Expr *InitE = lowerDeclStmtToExpr(DS);
        Fo->setInit(Ctx.create<ExprStmt>(DS->loc(), InitE));
      }
      Fo->setBody(wrapIfDecl(Fo->body()));
      liftInStmt(Fo->body());
      return;
    }
    case StmtKind::While: {
      auto *W = cast<WhileStmt>(S);
      W->setBody(wrapIfDecl(W->body()));
      liftInStmt(W->body());
      return;
    }
    case StmtKind::Label: {
      auto *L = cast<LabelStmt>(S);
      L->setSub(wrapIfDecl(L->sub()));
      liftInStmt(L->sub());
      return;
    }
    default:
      return;
    }
  }

  /// A bare DeclStmt in a controlled position (e.g. `if (c) int x = 1;`)
  /// must become a compound so the assignments have a place to live.
  Stmt *wrapIfDecl(Stmt *S) {
    auto *DS = dyn_cast_or_null<DeclStmt>(S);
    if (!DS)
      return S;
    std::vector<Stmt *> Stmts;
    lowerDeclStmt(DS, Stmts);
    return Ctx.create<CompoundStmt>(DS->loc(), std::move(Stmts));
  }

  void liftInCompound(CompoundStmt *C) {
    std::vector<Stmt *> NewBody;
    NewBody.reserve(C->body().size());
    for (Stmt *S : C->body()) {
      if (auto *DS = dyn_cast<DeclStmt>(S)) {
        lowerDeclStmt(DS, NewBody);
        continue;
      }
      liftInStmt(S);
      NewBody.push_back(S);
    }
    C->body() = std::move(NewBody);
  }

  ASTContext &Ctx;
  FunctionDecl *F;
  Renamer Names;
  std::vector<VarDecl *> Lifted;
};

} // namespace

unsigned hfuse::transform::liftDeclarations(ASTContext &Ctx,
                                            FunctionDecl *F) {
  return LifterImpl(Ctx, F).run();
}
