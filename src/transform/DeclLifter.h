//===-- transform/DeclLifter.h - Hoist local declarations -------*- C++ -*-===//
//
// Part of the HFuse reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lifts all local variable declarations of a kernel to the top of its
/// body, replacing initializers with assignment statements at the
/// original locations (paper §III-C). HFuse needs this because the fused
/// kernel guards whole kernel bodies with `goto`, and CUDA (like C++)
/// does not allow jumps over initialized declarations.
///
/// Shadowed declarations are renamed so all lifted names are unique at
/// function scope; Sema must have resolved references beforehand.
///
//===----------------------------------------------------------------------===//

#ifndef HFUSE_TRANSFORM_DECLLIFTER_H
#define HFUSE_TRANSFORM_DECLLIFTER_H

#include "cudalang/AST.h"

namespace hfuse::transform {

/// Lifts declarations in place. Returns the number of lifted variables.
unsigned liftDeclarations(cuda::ASTContext &Ctx, cuda::FunctionDecl *F);

} // namespace hfuse::transform

#endif // HFUSE_TRANSFORM_DECLLIFTER_H
