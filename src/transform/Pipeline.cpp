//===-- transform/Pipeline.cpp - HFuse preprocessing pipeline -------------===//
//
// Part of the HFuse reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "transform/Pipeline.h"

#include "cudalang/Parser.h"
#include "cudalang/Sema.h"
#include "support/StringUtils.h"
#include "transform/ASTWalker.h"
#include "transform/DeclLifter.h"
#include "transform/Inliner.h"

using namespace hfuse;
using namespace hfuse::cuda;
using namespace hfuse::transform;

void hfuse::transform::stripImplicitCasts(Stmt *S) {
  rewriteAllExprs(S, [](Expr *E) -> Expr * {
    if (auto *C = dyn_cast<CastExpr>(E))
      if (C->isImplicit())
        return C->sub();
    return E;
  });
}

bool hfuse::transform::preprocessKernel(ASTContext &Ctx, FunctionDecl *F,
                                        DiagnosticEngine &Diags) {
  Sema S(Ctx, Diags);
  if (!S.runOnFunction(F))
    return false;
  if (!inlineDeviceCalls(Ctx, F, Diags))
    return false;
  stripImplicitCasts(F->body());
  if (!S.runOnFunction(F))
    return false;
  liftDeclarations(Ctx, F);
  stripImplicitCasts(F->body());
  return S.runOnFunction(F);
}

std::unique_ptr<PreprocessedKernel>
hfuse::transform::parseAndPreprocess(std::string_view Source,
                                     const std::string &KernelName,
                                     DiagnosticEngine &Diags) {
  auto R = parseAndPreprocessOr(Source, KernelName, Diags);
  return R ? R.take() : nullptr;
}

Expected<std::unique_ptr<PreprocessedKernel>>
hfuse::transform::parseAndPreprocessOr(std::string_view Source,
                                       const std::string &KernelName,
                                       DiagnosticEngine &Diags) {
  auto Fail = [&](ErrorCode Code) {
    return Status(Code, Diags.str());
  };
  auto Result = std::make_unique<PreprocessedKernel>();
  Result->Ctx = std::make_unique<ASTContext>();

  Parser P(Source, *Result->Ctx, Diags);
  if (!P.parseTranslationUnit())
    return Fail(ErrorCode::ParseError);

  // Device functions must be resolved before the kernel is analyzed.
  Sema S(*Result->Ctx, Diags);
  if (!S.run())
    return Fail(ErrorCode::SemaError);

  FunctionDecl *Kernel = nullptr;
  if (!KernelName.empty()) {
    Kernel = Result->Ctx->translationUnit().findFunction(KernelName);
    if (!Kernel || !Kernel->isKernel()) {
      Diags.error(SourceLocation(),
                  formatString("no __global__ kernel named '%s' in input",
                               KernelName.c_str()));
      return Fail(ErrorCode::SemaError);
    }
  } else {
    for (FunctionDecl *F : Result->Ctx->translationUnit().functions()) {
      if (!F->isKernel())
        continue;
      if (Kernel) {
        Diags.error(SourceLocation(),
                    "multiple __global__ kernels in input; pass a name");
        return Fail(ErrorCode::SemaError);
      }
      Kernel = F;
    }
    if (!Kernel) {
      Diags.error(SourceLocation(), "no __global__ kernel in input");
      return Fail(ErrorCode::SemaError);
    }
  }

  // The first Sema pass above left implicit casts in the tree;
  // preprocessKernel starts with its own Sema run, so strip them first.
  stripImplicitCasts(Kernel->body());
  if (!preprocessKernel(*Result->Ctx, Kernel, Diags))
    return Fail(ErrorCode::SemaError);
  Result->Kernel = Kernel;
  return Result;
}
