//===-- transform/BarrierReplacer.h - Partial barrier rewrite ---*- C++ -*-===//
//
// Part of the HFuse reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replaces `__syncthreads()` with the inline PTX partial barrier
/// `asm("bar.sync <id>, <count>;")` (paper Figure 5, lines 5-6). In the
/// fused kernel, threads of both input kernels coexist in one block, so a
/// full `__syncthreads()` would deadlock or change semantics; a named
/// barrier with an explicit arrival count synchronizes only the thread
/// range belonging to one input kernel.
///
//===----------------------------------------------------------------------===//

#ifndef HFUSE_TRANSFORM_BARRIERREPLACER_H
#define HFUSE_TRANSFORM_BARRIERREPLACER_H

#include "cudalang/AST.h"
#include "support/Diagnostics.h"

namespace hfuse::transform {

/// Rewrites every `__syncthreads()` statement in \p Body into
/// `asm("bar.sync BarrierId, NumThreads;")`. \p NumThreads must be a
/// multiple of the warp size (PTX requirement; checked). Returns the
/// number of barriers replaced, or -1 on error (e.g. __syncthreads in a
/// value position).
int replaceBarriers(cuda::ASTContext &Ctx, cuda::Stmt *Body, int BarrierId,
                    int NumThreads, DiagnosticEngine &Diags);

/// Counts `__syncthreads()` calls in \p Body.
unsigned countSyncthreads(const cuda::Stmt *Body);

} // namespace hfuse::transform

#endif // HFUSE_TRANSFORM_BARRIERREPLACER_H
