//===-- transform/BarrierReplacer.cpp - Partial barrier rewrite -----------===//
//
// Part of the HFuse reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "transform/BarrierReplacer.h"

#include "support/StringUtils.h"
#include "transform/ASTWalker.h"

using namespace hfuse;
using namespace hfuse::cuda;
using namespace hfuse::transform;

static bool isSyncthreadsCall(const Expr *E) {
  const auto *C = dyn_cast<CallExpr>(ignoreParensAndImplicitCasts(E));
  return C && !C->calleeDecl() && C->callee() == "__syncthreads";
}

int hfuse::transform::replaceBarriers(ASTContext &Ctx, Stmt *Body,
                                      int BarrierId, int NumThreads,
                                      DiagnosticEngine &Diags) {
  assert(BarrierId >= 0 && BarrierId <= 15 &&
         "PTX names barriers 0 through 15");
  if (NumThreads <= 0 || NumThreads % 32 != 0) {
    Diags.error(SourceLocation(),
                formatString("bar.sync thread count %d is not a positive "
                             "multiple of the warp size",
                             NumThreads));
    return -1;
  }

  int NumReplaced = 0;
  bool BadPosition = false;

  // Statement-position __syncthreads() becomes an asm statement.
  rewriteStmts(Body, [&](Stmt *S) -> Stmt * {
    auto *ES = dyn_cast<ExprStmt>(S);
    if (!ES || !ES->expr() || !isSyncthreadsCall(ES->expr()))
      return S;
    ++NumReplaced;
    return Ctx.create<AsmStmt>(S->loc(),
                               formatString("bar.sync %d, %d;", BarrierId,
                                            NumThreads),
                               /*IsVolatile=*/false);
  });

  // Any remaining __syncthreads call sits in a value position.
  rewriteAllExprs(Body, [&](Expr *E) -> Expr * {
    if (isSyncthreadsCall(E)) {
      Diags.error(E->loc(),
                  "__syncthreads() may only appear as a whole statement");
      BadPosition = true;
    }
    return E;
  });

  return BadPosition ? -1 : NumReplaced;
}

unsigned hfuse::transform::countSyncthreads(const Stmt *Body) {
  // Read-only walk: this runs on the shared input-kernel AST from
  // concurrent search workers, where the identity-rewriting walkers
  // would race on the child-pointer stores.
  unsigned Count = 0;
  forEachExpr(Body, [&](const Expr *E) {
    if (isSyncthreadsCall(E))
      ++Count;
  });
  return Count;
}
