//===-- transform/ASTWalker.cpp - Generic AST traversal -------------------===//
//
// Part of the HFuse reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "transform/ASTWalker.h"

using namespace hfuse;
using namespace hfuse::cuda;

void hfuse::transform::forEachStmt(Stmt *S,
                                   const std::function<void(Stmt *)> &Fn) {
  if (!S)
    return;
  Fn(S);
  switch (S->kind()) {
  case StmtKind::Compound:
    for (Stmt *Sub : cast<CompoundStmt>(S)->body())
      forEachStmt(Sub, Fn);
    return;
  case StmtKind::If: {
    auto *I = cast<IfStmt>(S);
    forEachStmt(I->thenStmt(), Fn);
    forEachStmt(I->elseStmt(), Fn);
    return;
  }
  case StmtKind::For: {
    auto *F = cast<ForStmt>(S);
    forEachStmt(F->init(), Fn);
    forEachStmt(F->body(), Fn);
    return;
  }
  case StmtKind::While:
    forEachStmt(cast<WhileStmt>(S)->body(), Fn);
    return;
  case StmtKind::Label:
    forEachStmt(cast<LabelStmt>(S)->sub(), Fn);
    return;
  default:
    return;
  }
}

namespace {

void visitExpr(const Expr *E, const std::function<void(const Expr *)> &Fn) {
  if (!E)
    return;
  switch (E->kind()) {
  case StmtKind::Unary:
    visitExpr(cast<UnaryExpr>(E)->sub(), Fn);
    break;
  case StmtKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    visitExpr(B->lhs(), Fn);
    visitExpr(B->rhs(), Fn);
    break;
  }
  case StmtKind::Conditional: {
    const auto *C = cast<ConditionalExpr>(E);
    visitExpr(C->cond(), Fn);
    visitExpr(C->trueExpr(), Fn);
    visitExpr(C->falseExpr(), Fn);
    break;
  }
  case StmtKind::Call: {
    const auto *C = cast<CallExpr>(E);
    for (const Expr *Arg : C->args())
      visitExpr(Arg, Fn);
    break;
  }
  case StmtKind::Cast:
    visitExpr(cast<CastExpr>(E)->sub(), Fn);
    break;
  case StmtKind::Index: {
    const auto *I = cast<IndexExpr>(E);
    visitExpr(I->base(), Fn);
    visitExpr(I->index(), Fn);
    break;
  }
  case StmtKind::Paren:
    visitExpr(cast<ParenExpr>(E)->sub(), Fn);
    break;
  default:
    break;
  }
  Fn(E);
}

} // namespace

void hfuse::transform::forEachExpr(
    const Stmt *S, const std::function<void(const Expr *)> &Fn) {
  if (!S)
    return;
  switch (S->kind()) {
  case StmtKind::Compound:
    for (const Stmt *Sub : cast<CompoundStmt>(S)->body())
      forEachExpr(Sub, Fn);
    return;
  case StmtKind::Decl:
    for (const VarDecl *V : cast<DeclStmt>(S)->decls())
      if (V->init())
        visitExpr(V->init(), Fn);
    return;
  case StmtKind::ExprStmtKind:
    visitExpr(cast<ExprStmt>(S)->expr(), Fn);
    return;
  case StmtKind::If: {
    const auto *I = cast<IfStmt>(S);
    visitExpr(I->cond(), Fn);
    forEachExpr(I->thenStmt(), Fn);
    forEachExpr(I->elseStmt(), Fn);
    return;
  }
  case StmtKind::For: {
    const auto *F = cast<ForStmt>(S);
    forEachExpr(F->init(), Fn);
    visitExpr(F->cond(), Fn);
    visitExpr(F->inc(), Fn);
    forEachExpr(F->body(), Fn);
    return;
  }
  case StmtKind::While: {
    const auto *W = cast<WhileStmt>(S);
    visitExpr(W->cond(), Fn);
    forEachExpr(W->body(), Fn);
    return;
  }
  case StmtKind::Return:
    visitExpr(cast<ReturnStmt>(S)->value(), Fn);
    return;
  case StmtKind::Label:
    forEachExpr(cast<LabelStmt>(S)->sub(), Fn);
    return;
  default:
    return;
  }
}

Expr *hfuse::transform::rewriteExpr(
    Expr *E, const std::function<Expr *(Expr *)> &Fn) {
  if (!E)
    return nullptr;
  switch (E->kind()) {
  case StmtKind::Unary: {
    auto *U = cast<UnaryExpr>(E);
    U->setSub(rewriteExpr(U->sub(), Fn));
    break;
  }
  case StmtKind::Binary: {
    auto *B = cast<BinaryExpr>(E);
    B->setLHS(rewriteExpr(B->lhs(), Fn));
    B->setRHS(rewriteExpr(B->rhs(), Fn));
    break;
  }
  case StmtKind::Conditional: {
    auto *C = cast<ConditionalExpr>(E);
    C->setCond(rewriteExpr(C->cond(), Fn));
    C->setTrueExpr(rewriteExpr(C->trueExpr(), Fn));
    C->setFalseExpr(rewriteExpr(C->falseExpr(), Fn));
    break;
  }
  case StmtKind::Call: {
    auto *C = cast<CallExpr>(E);
    for (Expr *&Arg : C->args())
      Arg = rewriteExpr(Arg, Fn);
    break;
  }
  case StmtKind::Cast: {
    auto *C = cast<CastExpr>(E);
    C->setSub(rewriteExpr(C->sub(), Fn));
    break;
  }
  case StmtKind::Index: {
    auto *I = cast<IndexExpr>(E);
    I->setBase(rewriteExpr(I->base(), Fn));
    I->setIndex(rewriteExpr(I->index(), Fn));
    break;
  }
  case StmtKind::Paren: {
    auto *P = cast<ParenExpr>(E);
    P->setSub(rewriteExpr(P->sub(), Fn));
    break;
  }
  default:
    break;
  }
  return Fn(E);
}

void hfuse::transform::rewriteAllExprs(
    Stmt *S, const std::function<Expr *(Expr *)> &Fn) {
  if (!S)
    return;
  switch (S->kind()) {
  case StmtKind::Compound:
    for (Stmt *Sub : cast<CompoundStmt>(S)->body())
      rewriteAllExprs(Sub, Fn);
    return;
  case StmtKind::Decl:
    for (VarDecl *V : cast<DeclStmt>(S)->decls())
      if (V->init())
        V->setInit(rewriteExpr(V->init(), Fn));
    return;
  case StmtKind::ExprStmtKind: {
    auto *ES = cast<ExprStmt>(S);
    if (ES->expr())
      ES->setExpr(rewriteExpr(ES->expr(), Fn));
    return;
  }
  case StmtKind::If: {
    auto *I = cast<IfStmt>(S);
    I->setCond(rewriteExpr(I->cond(), Fn));
    rewriteAllExprs(I->thenStmt(), Fn);
    rewriteAllExprs(I->elseStmt(), Fn);
    return;
  }
  case StmtKind::For: {
    auto *F = cast<ForStmt>(S);
    rewriteAllExprs(F->init(), Fn);
    if (F->cond())
      F->setCond(rewriteExpr(F->cond(), Fn));
    if (F->inc())
      F->setInc(rewriteExpr(F->inc(), Fn));
    rewriteAllExprs(F->body(), Fn);
    return;
  }
  case StmtKind::While: {
    auto *W = cast<WhileStmt>(S);
    W->setCond(rewriteExpr(W->cond(), Fn));
    rewriteAllExprs(W->body(), Fn);
    return;
  }
  case StmtKind::Return: {
    auto *R = cast<ReturnStmt>(S);
    if (R->value())
      R->setValue(rewriteExpr(R->value(), Fn));
    return;
  }
  case StmtKind::Label:
    rewriteAllExprs(cast<LabelStmt>(S)->sub(), Fn);
    return;
  default:
    return;
  }
}

Stmt *hfuse::transform::rewriteStmts(
    Stmt *S, const std::function<Stmt *(Stmt *)> &Fn) {
  if (!S)
    return nullptr;
  switch (S->kind()) {
  case StmtKind::Compound: {
    auto *C = cast<CompoundStmt>(S);
    for (Stmt *&Sub : C->body())
      Sub = rewriteStmts(Sub, Fn);
    break;
  }
  case StmtKind::If: {
    auto *I = cast<IfStmt>(S);
    I->setThen(rewriteStmts(I->thenStmt(), Fn));
    I->setElse(rewriteStmts(I->elseStmt(), Fn));
    break;
  }
  case StmtKind::For: {
    auto *F = cast<ForStmt>(S);
    F->setInit(rewriteStmts(F->init(), Fn));
    F->setBody(rewriteStmts(F->body(), Fn));
    break;
  }
  case StmtKind::While: {
    auto *W = cast<WhileStmt>(S);
    W->setBody(rewriteStmts(W->body(), Fn));
    break;
  }
  case StmtKind::Label: {
    auto *L = cast<LabelStmt>(S);
    L->setSub(rewriteStmts(L->sub(), Fn));
    break;
  }
  default:
    break;
  }
  return Fn(S);
}
