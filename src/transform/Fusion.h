//===-- transform/Fusion.h - Horizontal & vertical kernel fusion -*- C++ -*-===//
//
// Part of the HFuse reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The HFuse transformations. `fuseHorizontal` implements the paper's
/// Generate() algorithm (Figure 5): the fused kernel partitions its
/// thread space into [0,D1) for kernel 1 and [D1,D1+D2) for kernel 2,
/// recomputes per-kernel threadIdx/blockDim in a prologue, replaces
/// __syncthreads() with partial `bar.sync` barriers, and guards each
/// input kernel's statements with thread-range branches. `fuseVertical`
/// implements the standard baseline: one thread executes both kernels'
/// statements back to back, barriers untouched.
///
/// Inputs must be *preprocessed* kernels (see Pipeline.h): device calls
/// inlined and local declarations lifted to the top of the body.
///
//===----------------------------------------------------------------------===//

#ifndef HFUSE_TRANSFORM_FUSION_H
#define HFUSE_TRANSFORM_FUSION_H

#include "cudalang/AST.h"
#include "support/Diagnostics.h"
#include "support/Status.h"

#include <string>

namespace hfuse::transform {

/// Options for fuseHorizontal.
struct HorizontalFusionOptions {
  /// Threads assigned to kernel 1 ([0, D1)); a positive multiple of 32.
  int D1 = 0;
  /// Threads assigned to kernel 2 ([D1, D1+D2)); a positive multiple
  /// of 32.
  int D2 = 0;
  /// Block sub-dimensions (.y/.z extents) of each original kernel's
  /// launch shape. Dk is the kernel's *total* thread count; its x
  /// extent is Dk / (Yk * Zk). This is the paper's Figure 4 prologue,
  /// where kernel 1's 896 threads form a 56x16 block
  /// (`blockDim_x = 896 / 16; blockDim_y = 16`) and the fused kernel
  /// recomputes threadIdx_x/_y/_z from the linear thread id. Extents of
  /// 1 (the default) reproduce the one-dimensional Figure 5 prologue.
  int Y1 = 1, Z1 = 1;
  int Y2 = 1, Z2 = 1;
  /// Name of the emitted kernel; empty derives "<k1>_<k2>_fused".
  std::string FusedName;
  /// PTX barrier ids used for the two kernels' partial barriers.
  int BarrierId1 = 1;
  int BarrierId2 = 2;
  /// Ablation knob: when false, __syncthreads() is kept as a full
  /// barrier instead of a partial bar.sync (this is what a naive fusion
  /// without the paper's §III-A treatment would do). Functionally unsafe
  /// in general; measured by bench_ablation_barrier.
  bool UsePartialBarriers = true;
};

/// Result of a fusion transform. The fused function lives in the target
/// ASTContext passed to the fuser and is appended to its translation
/// unit. Parameters are the two input kernels' parameters concatenated
/// (kernel 1 first), renamed where they collided.
struct FusionResult {
  cuda::FunctionDecl *Fused = nullptr;
  bool Ok = false;
  int D1 = 0;
  int D2 = 0;
  unsigned NumParams1 = 0;
  unsigned NumParams2 = 0;
  /// Which input kernels use extern (dynamic) shared memory. At most one
  /// may; the fused kernel forwards its whole dynamic allocation to it.
  bool ExternShared1 = false;
  bool ExternShared2 = false;
  /// Barriers rewritten per input kernel (0 when none were present).
  unsigned NumBarriers1 = 0;
  unsigned NumBarriers2 = 0;
};

/// Horizontally fuses two preprocessed kernels into \p Target (paper
/// Figure 5). Reports problems to \p Diags; check Result.Ok.
FusionResult fuseHorizontal(cuda::ASTContext &Target,
                            const cuda::FunctionDecl *K1,
                            const cuda::FunctionDecl *K2,
                            const HorizontalFusionOptions &Opts,
                            DiagnosticEngine &Diags);

/// Vertically fuses two preprocessed kernels (the standard baseline):
/// thread t runs K1's statements, then K2's. Both kernels must be
/// launched with identical grid/block dimensions for this to be
/// meaningful; barrier semantics are preserved because all threads of
/// the block participate in every barrier.
FusionResult fuseVertical(cuda::ASTContext &Target,
                          const cuda::FunctionDecl *K1,
                          const cuda::FunctionDecl *K2,
                          const std::string &FusedName,
                          DiagnosticEngine &Diags);

/// Result of an N-way horizontal fusion (extension beyond the paper,
/// which fuses pairs; the PTX barrier-id space allows up to 15 thread
/// partitions per block).
struct MultiFusionResult {
  cuda::FunctionDecl *Fused = nullptr;
  bool Ok = false;
  /// Structured form of the failure when !Ok (ok() on success), so
  /// search pipelines can retire a bad candidate into their Failed
  /// ledger instead of parsing diagnostics: validation rejections
  /// (too many kernels for the PTX barrier-id space, block > 1024,
  /// non-warp-multiple partition, shape mismatch) and codegen
  /// problems all carry ErrorCode::FusionUnsupported.
  Status Err;
  /// Partition sizes, in kernel order.
  std::vector<int> Dims;
  /// Parameter count contributed by each input kernel, in order.
  std::vector<unsigned> NumParams;
  /// Which input kernel (if any) uses extern shared memory.
  int ExternSharedKernel = -1;
};

/// Horizontally fuses N >= 2 preprocessed kernels: kernel k's threads
/// occupy [prefix_k, prefix_k + Dims[k]) of the fused block and its
/// barriers become `bar.sync k+1, Dims[k]`. Middle partitions get
/// two-sided thread-range guards (a generalization of the paper's
/// Figure 5, which only needs one-sided guards for two kernels).
/// \p Shapes optionally gives each kernel's (.y, .z) block extents (see
/// HorizontalFusionOptions::Y1); empty means every kernel is
/// one-dimensional.
MultiFusionResult fuseHorizontalMany(
    cuda::ASTContext &Target,
    const std::vector<const cuda::FunctionDecl *> &Kernels,
    const std::vector<int> &Dims, const std::string &FusedName,
    DiagnosticEngine &Diags,
    const std::vector<std::pair<int, int>> &Shapes = {});

} // namespace hfuse::transform

#endif // HFUSE_TRANSFORM_FUSION_H
