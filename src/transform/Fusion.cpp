//===-- transform/Fusion.cpp - Horizontal & vertical kernel fusion --------===//
//
// Part of the HFuse reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "transform/Fusion.h"

#include "cudalang/ASTCloner.h"
#include "support/StringUtils.h"
#include "transform/ASTWalker.h"
#include "transform/BarrierReplacer.h"
#include "transform/BuiltinReplacer.h"
#include "transform/KernelInfo.h"
#include "transform/Renamer.h"

using namespace hfuse;
using namespace hfuse::cuda;
using namespace hfuse::transform;

namespace {

/// Rewrites `return;` inside a spliced kernel body into `goto EndLabel;`
/// so an early exit of one input kernel does not skip the other's
/// statements.
void lowerReturnsToGoto(ASTContext &Ctx, Stmt *Body,
                        const std::string &EndLabel) {
  rewriteStmts(Body, [&](Stmt *S) -> Stmt * {
    if (!isa<ReturnStmt>(S))
      return S;
    assert(!cast<ReturnStmt>(S)->value() && "kernels return void");
    return Ctx.create<GotoStmt>(S->loc(), EndLabel);
  });
}

/// Splits a preprocessed (decl-lifted) kernel body into its leading
/// declaration statements and the remaining non-declaration statements
/// (paper Figure 5, line 2).
void splitDeclsAndStmts(CompoundStmt *Body, std::vector<Stmt *> &Decls,
                        std::vector<Stmt *> &Stmts) {
  for (Stmt *S : Body->body()) {
    if (isa<DeclStmt>(S))
      Decls.push_back(S);
    else
      Stmts.push_back(S);
  }
}

/// Preconditions shared by both fusers. Returns false after reporting.
bool checkFusible(const FunctionDecl *K1, const FunctionDecl *K2,
                  FusionResult &Res, DiagnosticEngine &Diags) {
  for (const FunctionDecl *K : {K1, K2}) {
    if (!K->isKernel()) {
      Diags.error(K->loc(), formatString("'%s' is not a __global__ kernel",
                                         K->name().c_str()));
      return false;
    }
  }
  KernelResources R1 = analyzeKernel(K1);
  KernelResources R2 = analyzeKernel(K2);
  Res.ExternShared1 = R1.UsesExternShared;
  Res.ExternShared2 = R2.UsesExternShared;
  if (R1.UsesExternShared && R2.UsesExternShared) {
    Diags.error(K2->loc(),
                "both kernels use extern __shared__ memory; fusing them "
                "would alias the dynamic shared region");
    return false;
  }
  return true;
}

/// Validates a (D, Y, Z) partition shape for one input kernel.
bool checkPartitionShape(int D, int Y, int Z, const char *Which,
                         DiagnosticEngine &Diags) {
  if (Y < 1 || Z < 1 || D % (Y * Z) != 0) {
    Diags.error(SourceLocation(),
                formatString("kernel %s: partition of %d threads cannot "
                             "form a block with .y extent %d and .z "
                             "extent %d",
                             Which, D, Y, Z));
    return false;
  }
  return true;
}

/// Reserves the prologue variable names buildThreadMap() may create for
/// the kernel with name suffix \p Suffix.
void reserveThreadMapNames(Renamer &Names, const std::string &Suffix) {
  for (const char *Prefix :
       {"tid_", "size_", "tidx_", "tidy_", "tidz_", "sizex_", "sizey_",
        "sizez_"})
    Names.reserve(Prefix + Suffix);
}

/// Creates the per-kernel threadIdx/blockDim stand-in variables for one
/// input kernel and appends their declarations via \p AppendDecl.
///
/// For a one-dimensional partition this is the paper's Figure 5
/// prologue: a single `size_<k> = D` variable next to the existing
/// linear `tid_<k>`. For a multi-dimensional partition it is the
/// Figure 4 prologue: `sizex/sizey/sizez_<k>` hold the original block
/// extents and `tidx/tidy/tidz_<k>` decompose the linear offset
/// (`threadIdx_x = global_tid % blockDim_x;
///   threadIdx_y = global_tid / blockDim_x % blockDim_y; ...`).
template <typename MakeVarFn, typename AppendFn>
KernelThreadMap buildThreadMap(ASTContext &Target, MakeVarFn &&MakeIntVar,
                               AppendFn &&AppendDecl,
                               const std::string &Suffix, VarDecl *TidLinear,
                               int D, int Y, int Z) {
  KernelThreadMap Map;
  if (Y == 1 && Z == 1) {
    VarDecl *Size = MakeIntVar("size_" + Suffix, Target.intLit(D));
    AppendDecl(Size);
    Map.Tid[0] = TidLinear;
    Map.Size[0] = Size;
    return Map;
  }
  int X = D / (Y * Z);
  VarDecl *SX = MakeIntVar("sizex_" + Suffix, Target.intLit(X));
  VarDecl *SY = MakeIntVar("sizey_" + Suffix, Target.intLit(Y));
  VarDecl *SZ = MakeIntVar("sizez_" + Suffix, Target.intLit(Z));
  VarDecl *TX = MakeIntVar(
      "tidx_" + Suffix,
      Target.binOp(BinaryOpKind::Rem, Target.ref(TidLinear),
                   Target.ref(SX)));
  VarDecl *TY = MakeIntVar(
      "tidy_" + Suffix,
      Target.binOp(BinaryOpKind::Rem,
                   Target.binOp(BinaryOpKind::Div, Target.ref(TidLinear),
                                Target.ref(SX)),
                   Target.ref(SY)));
  VarDecl *TZ = MakeIntVar(
      "tidz_" + Suffix,
      Target.binOp(BinaryOpKind::Div, Target.ref(TidLinear),
                   Target.binOp(BinaryOpKind::Mul, Target.ref(SX),
                                Target.ref(SY))));
  for (VarDecl *V : {SX, SY, SZ, TX, TY, TZ})
    AppendDecl(V);
  Map.Tid[0] = TX;
  Map.Tid[1] = TY;
  Map.Tid[2] = TZ;
  Map.Size[0] = SX;
  Map.Size[1] = SY;
  Map.Size[2] = SZ;
  return Map;
}

} // namespace

FusionResult hfuse::transform::fuseHorizontal(
    ASTContext &Target, const FunctionDecl *K1, const FunctionDecl *K2,
    const HorizontalFusionOptions &Opts, DiagnosticEngine &Diags) {
  FusionResult Res;
  Res.D1 = Opts.D1;
  Res.D2 = Opts.D2;
  if (!checkFusible(K1, K2, Res, Diags))
    return Res;

  if (Opts.D1 <= 0 || Opts.D2 <= 0 || Opts.D1 % 32 != 0 ||
      Opts.D2 % 32 != 0) {
    Diags.error(SourceLocation(),
                formatString("thread partition %d+%d is not made of "
                             "positive multiples of the warp size",
                             Opts.D1, Opts.D2));
    return Res;
  }
  if (!checkPartitionShape(Opts.D1, Opts.Y1, Opts.Z1, "1", Diags) ||
      !checkPartitionShape(Opts.D2, Opts.Y2, Opts.Z2, "2", Diags))
    return Res;
  if (Opts.D1 + Opts.D2 > 1024) {
    Diags.error(SourceLocation(),
                formatString("fused block dimension %d exceeds the 1024 "
                             "threads-per-block hardware limit",
                             Opts.D1 + Opts.D2));
    return Res;
  }
  if (Opts.BarrierId1 == Opts.BarrierId2 || Opts.BarrierId1 < 0 ||
      Opts.BarrierId1 > 15 || Opts.BarrierId2 < 0 || Opts.BarrierId2 > 15) {
    Diags.error(SourceLocation(), "barrier ids must be distinct and in "
                                  "[0, 15]");
    return Res;
  }

  // Reserve the prologue's names so colliding kernel locals get renamed.
  Renamer Names;
  Names.reserve("tid");
  reserveThreadMapNames(Names, "1");
  reserveThreadMapNames(Names, "2");
  std::string EndLabel1 = "hf_k1_end";
  std::string EndLabel2 = "hf_k2_end";
  Names.reserve(EndLabel1);
  Names.reserve(EndLabel2);

  // Clone both kernels into the target context and make names fresh.
  ASTCloner Cloner1(Target);
  FunctionDecl *C1 = Cloner1.cloneFunction(K1);
  Names.renameFunction(C1, "_1");
  ASTCloner Cloner2(Target);
  FunctionDecl *C2 = Cloner2.cloneFunction(K2);
  Names.renameFunction(C2, "_2");

  // Prologue (paper Figure 5, line 3):
  //   tid = threadIdx.x; tid_1 = threadIdx.x; tid_2 = threadIdx.x - d1;
  //   size_1 = d1; size_2 = d2;
  TypeContext &Types = Target.types();
  auto MakeIntVar = [&](const std::string &Name, Expr *Init) {
    auto *V =
        Target.create<VarDecl>(SourceLocation(), Name, Types.intTy());
    V->setInit(Init);
    return V;
  };
  auto ThreadIdxX = [&]() -> Expr * {
    Expr *B = Target.create<BuiltinIdxExpr>(SourceLocation(),
                                            BuiltinIdxKind::ThreadIdx, 0);
    // Cast to int so tid_2 can go negative for kernel-1 threads.
    return Target.create<CastExpr>(SourceLocation(), Types.intTy(), B,
                                   /*IsImplicit=*/false);
  };
  VarDecl *Tid = MakeIntVar("tid", ThreadIdxX());
  VarDecl *Tid1 = MakeIntVar("tid_1", ThreadIdxX());
  VarDecl *Tid2 = MakeIntVar(
      "tid_2",
      Target.binOp(BinaryOpKind::Sub, ThreadIdxX(), Target.intLit(Opts.D1)));

  // Per-kernel threadIdx/blockDim stand-ins (Figure 5 line 3 for 1-D
  // partitions, the Figure 4 prologue for multi-dimensional ones). The
  // declarations are gathered here and emitted after tid/tid_1/tid_2.
  std::vector<VarDecl *> MapDecls;
  auto GatherDecl = [&](VarDecl *V) { MapDecls.push_back(V); };
  KernelThreadMap Map1 = buildThreadMap(Target, MakeIntVar, GatherDecl, "1",
                                        Tid1, Opts.D1, Opts.Y1, Opts.Z1);
  KernelThreadMap Map2 = buildThreadMap(Target, MakeIntVar, GatherDecl, "2",
                                        Tid2, Opts.D2, Opts.Y2, Opts.Z2);

  // Partition the cloned bodies.
  std::vector<Stmt *> Decls1, Stmts1, Decls2, Stmts2;
  splitDeclsAndStmts(C1->body(), Decls1, Stmts1);
  splitDeclsAndStmts(C2->body(), Decls2, Stmts2);

  auto *Body1 = Target.create<CompoundStmt>(SourceLocation(),
                                            std::move(Stmts1));
  auto *Body2 = Target.create<CompoundStmt>(SourceLocation(),
                                            std::move(Stmts2));

  // Replace threadIdx.*/blockDim.* (Figure 5, line 4).
  if (!replaceBuiltins(Target, Body1, Map1, Diags) ||
      !replaceBuiltins(Target, Body2, Map2, Diags))
    return Res;

  // Replace __syncthreads with partial barriers (Figure 5, lines 5-6).
  if (Opts.UsePartialBarriers) {
    int N1 = replaceBarriers(Target, Body1, Opts.BarrierId1, Opts.D1, Diags);
    int N2 = replaceBarriers(Target, Body2, Opts.BarrierId2, Opts.D2, Diags);
    if (N1 < 0 || N2 < 0)
      return Res;
    Res.NumBarriers1 = static_cast<unsigned>(N1);
    Res.NumBarriers2 = static_cast<unsigned>(N2);
  } else {
    Res.NumBarriers1 = countSyncthreads(Body1);
    Res.NumBarriers2 = countSyncthreads(Body2);
  }

  // An early `return` of one kernel must not skip the other kernel.
  lowerReturnsToGoto(Target, Body1, EndLabel1);
  lowerReturnsToGoto(Target, Body2, EndLabel2);

  // Assemble the fused body (Figure 5, lines 7-12).
  std::vector<Stmt *> Fused;
  auto AppendDecl = [&](VarDecl *V) {
    Fused.push_back(Target.create<DeclStmt>(SourceLocation(),
                                            std::vector<VarDecl *>{V}));
  };
  AppendDecl(Tid);
  AppendDecl(Tid1);
  AppendDecl(Tid2);
  for (VarDecl *V : MapDecls)
    AppendDecl(V);
  for (Stmt *S : Decls1)
    Fused.push_back(S);
  for (Stmt *S : Decls2)
    Fused.push_back(S);

  // if (threadIdx.x >= d1) goto hf_k1_end;
  auto GuardCond = [&](BinaryOpKind Op, int Bound) -> Expr * {
    Expr *T = Target.create<BuiltinIdxExpr>(SourceLocation(),
                                            BuiltinIdxKind::ThreadIdx, 0);
    return Target.binOp(Op, T, Target.intLit(Bound));
  };
  Fused.push_back(Target.create<IfStmt>(
      SourceLocation(), GuardCond(BinaryOpKind::Ge, Opts.D1),
      Target.create<GotoStmt>(SourceLocation(), EndLabel1),
      /*Else=*/nullptr));
  for (Stmt *S : Body1->body())
    Fused.push_back(S);
  Fused.push_back(Target.create<LabelStmt>(SourceLocation(), EndLabel1,
                                           /*Sub=*/nullptr));

  // if (threadIdx.x < d1) goto hf_k2_end;
  Fused.push_back(Target.create<IfStmt>(
      SourceLocation(), GuardCond(BinaryOpKind::Lt, Opts.D1),
      Target.create<GotoStmt>(SourceLocation(), EndLabel2),
      /*Else=*/nullptr));
  for (Stmt *S : Body2->body())
    Fused.push_back(S);
  Fused.push_back(Target.create<LabelStmt>(SourceLocation(), EndLabel2,
                                           /*Sub=*/nullptr));

  // Merge parameter lists (kernel 1 first).
  std::vector<VarDecl *> Params;
  Params.reserve(C1->params().size() + C2->params().size());
  for (VarDecl *P : C1->params())
    Params.push_back(P);
  for (VarDecl *P : C2->params())
    Params.push_back(P);
  Res.NumParams1 = C1->params().size();
  Res.NumParams2 = C2->params().size();

  std::string Name = Opts.FusedName.empty()
                         ? K1->name() + "_" + K2->name() + "_fused"
                         : Opts.FusedName;
  auto *BodyStmt = Target.create<CompoundStmt>(SourceLocation(),
                                               std::move(Fused));
  Res.Fused = Target.create<FunctionDecl>(
      SourceLocation(), std::move(Name), FunctionDecl::FnKind::Global,
      Types.voidTy(), std::move(Params), BodyStmt);
  Target.translationUnit().functions().push_back(Res.Fused);
  Res.Ok = true;
  return Res;
}

FusionResult hfuse::transform::fuseVertical(ASTContext &Target,
                                            const FunctionDecl *K1,
                                            const FunctionDecl *K2,
                                            const std::string &FusedName,
                                            DiagnosticEngine &Diags) {
  FusionResult Res;
  if (!checkFusible(K1, K2, Res, Diags))
    return Res;

  // The vertical baseline leaves builtins untouched, so both input
  // kernels must be meaningful under one shared launch shape; a kernel
  // indexing .y/.z constrains that shape in a way the other kernel
  // cannot generally satisfy.
  for (const FunctionDecl *K : {K1, K2}) {
    if (analyzeKernel(K).UsesMultiDimBuiltins) {
      Diags.error(K->loc(),
                  formatString("kernel '%s' uses .y/.z block dimensions; "
                               "vertical fusion requires one-dimensional "
                               "kernels",
                               K->name().c_str()));
      return Res;
    }
  }

  Renamer Names;
  std::string EndLabel1 = "vf_k1_end";
  std::string EndLabel2 = "vf_k2_end";
  Names.reserve(EndLabel1);
  Names.reserve(EndLabel2);

  ASTCloner Cloner1(Target);
  FunctionDecl *C1 = Cloner1.cloneFunction(K1);
  Names.renameFunction(C1, "_1");
  ASTCloner Cloner2(Target);
  FunctionDecl *C2 = Cloner2.cloneFunction(K2);
  Names.renameFunction(C2, "_2");

  std::vector<Stmt *> Decls1, Stmts1, Decls2, Stmts2;
  splitDeclsAndStmts(C1->body(), Decls1, Stmts1);
  splitDeclsAndStmts(C2->body(), Decls2, Stmts2);
  auto *Body1 = Target.create<CompoundStmt>(SourceLocation(),
                                            std::move(Stmts1));
  auto *Body2 = Target.create<CompoundStmt>(SourceLocation(),
                                            std::move(Stmts2));

  // threadIdx/blockDim keep their meaning: the same threads execute both
  // kernels. Barriers stay full-block barriers. Early returns from the
  // first kernel must still not skip the second.
  lowerReturnsToGoto(Target, Body1, EndLabel1);
  lowerReturnsToGoto(Target, Body2, EndLabel2);
  Res.NumBarriers1 = countSyncthreads(Body1);
  Res.NumBarriers2 = countSyncthreads(Body2);

  std::vector<Stmt *> Fused;
  for (Stmt *S : Decls1)
    Fused.push_back(S);
  for (Stmt *S : Decls2)
    Fused.push_back(S);
  for (Stmt *S : Body1->body())
    Fused.push_back(S);
  Fused.push_back(Target.create<LabelStmt>(SourceLocation(), EndLabel1,
                                           /*Sub=*/nullptr));
  for (Stmt *S : Body2->body())
    Fused.push_back(S);
  Fused.push_back(Target.create<LabelStmt>(SourceLocation(), EndLabel2,
                                           /*Sub=*/nullptr));

  std::vector<VarDecl *> Params;
  for (VarDecl *P : C1->params())
    Params.push_back(P);
  for (VarDecl *P : C2->params())
    Params.push_back(P);
  Res.NumParams1 = C1->params().size();
  Res.NumParams2 = C2->params().size();

  std::string Name = FusedName.empty()
                         ? K1->name() + "_" + K2->name() + "_vfused"
                         : FusedName;
  auto *BodyStmt = Target.create<CompoundStmt>(SourceLocation(),
                                               std::move(Fused));
  Res.Fused = Target.create<FunctionDecl>(
      SourceLocation(), std::move(Name), FunctionDecl::FnKind::Global,
      Target.types().voidTy(), std::move(Params), BodyStmt);
  Target.translationUnit().functions().push_back(Res.Fused);
  Res.Ok = true;
  return Res;
}

MultiFusionResult hfuse::transform::fuseHorizontalMany(
    ASTContext &Target, const std::vector<const FunctionDecl *> &Kernels,
    const std::vector<int> &Dims, const std::string &FusedName,
    DiagnosticEngine &Diags,
    const std::vector<std::pair<int, int>> &Shapes) {
  MultiFusionResult Res;
  Res.Dims = Dims;

  // Every rejection lands in both channels: the human-readable
  // DiagnosticEngine and the structured Res.Err, so a search sweep can
  // retire the candidate into its Failed ledger without parsing text.
  auto Reject = [&](SourceLocation Loc, const std::string &Msg) {
    Diags.error(Loc, Msg);
    Res.Err = Status(ErrorCode::FusionUnsupported, Msg);
  };

  const size_t N = Kernels.size();
  if (N < 2 || N != Dims.size()) {
    Reject(SourceLocation(),
           "fuseHorizontalMany needs >= 2 kernels with one partition "
           "size each");
    return Res;
  }
  if (!Shapes.empty() && Shapes.size() != N) {
    Reject(SourceLocation(),
           "fuseHorizontalMany: Shapes must be empty or give one "
           "(.y, .z) extent pair per kernel");
    return Res;
  }
  if (N > 15) {
    Reject(SourceLocation(), "PTX provides 16 named barriers; at most "
                             "15 kernels can be fused (id 0 is "
                             "reserved)");
    return Res;
  }

  int D0 = 0;
  for (size_t I = 0; I < N; ++I) {
    int D = Dims[I];
    if (D <= 0 || D % 32 != 0) {
      Reject(SourceLocation(),
             formatString("partition size %d is not a positive "
                          "multiple of the warp size",
                          D));
      return Res;
    }
    if (!Shapes.empty() &&
        !checkPartitionShape(D, Shapes[I].first, Shapes[I].second,
                             formatString("%zu", I + 1).c_str(), Diags)) {
      Res.Err = Status(ErrorCode::FusionUnsupported,
                       formatString("kernel %zu: partition size %d does "
                                    "not factor into its (%d, %d) block "
                                    "extents",
                                    I + 1, D, Shapes[I].first,
                                    Shapes[I].second));
      return Res;
    }
    D0 += D;
  }
  if (D0 > 1024) {
    Reject(SourceLocation(),
           formatString("fused block dimension %d exceeds the 1024 "
                        "threads-per-block hardware limit",
                        D0));
    return Res;
  }

  // Per-pair preconditions, plus the single-extern-shared rule.
  for (size_t I = 0; I < N; ++I) {
    const FunctionDecl *K = Kernels[I];
    if (!K->isKernel()) {
      Reject(K->loc(), formatString("'%s' is not a __global__ kernel",
                                    K->name().c_str()));
      return Res;
    }
    KernelResources R = analyzeKernel(K);
    if (R.UsesExternShared) {
      if (Res.ExternSharedKernel >= 0) {
        Reject(K->loc(), "more than one input kernel uses extern "
                         "__shared__ memory");
        return Res;
      }
      Res.ExternSharedKernel = static_cast<int>(I);
    }
  }

  // Reserve prologue names, then clone and rename every kernel.
  Renamer Names;
  Names.reserve("tid");
  std::vector<std::string> EndLabels(N);
  for (size_t I = 0; I < N; ++I) {
    reserveThreadMapNames(Names, formatString("%zu", I + 1));
    EndLabels[I] = formatString("hf_k%zu_end", I + 1);
    Names.reserve(EndLabels[I]);
  }

  std::vector<FunctionDecl *> Clones(N);
  for (size_t I = 0; I < N; ++I) {
    ASTCloner Cloner(Target);
    Clones[I] = Cloner.cloneFunction(Kernels[I]);
    Names.renameFunction(Clones[I], formatString("_%zu", I + 1));
  }

  TypeContext &Types = Target.types();
  auto ThreadIdxX = [&]() -> Expr * {
    Expr *B = Target.create<BuiltinIdxExpr>(SourceLocation(),
                                            BuiltinIdxKind::ThreadIdx, 0);
    return Target.create<CastExpr>(SourceLocation(), Types.intTy(), B,
                                   /*IsImplicit=*/false);
  };
  auto MakeIntVar = [&](const std::string &Name, Expr *Init) {
    auto *V =
        Target.create<VarDecl>(SourceLocation(), Name, Types.intTy());
    V->setInit(Init);
    return V;
  };

  // Prologue: tid, and per kernel tid_k = threadIdx.x - prefix_k and
  // size_k = Dims[k].
  std::vector<Stmt *> Fused;
  auto AppendDecl = [&](VarDecl *V) {
    Fused.push_back(Target.create<DeclStmt>(SourceLocation(),
                                            std::vector<VarDecl *>{V}));
  };
  AppendDecl(MakeIntVar("tid", ThreadIdxX()));
  std::vector<VarDecl *> Tids(N);
  std::vector<KernelThreadMap> Maps(N);
  int Prefix = 0;
  for (size_t I = 0; I < N; ++I) {
    Expr *TidInit =
        Prefix == 0 ? ThreadIdxX()
                    : Target.binOp(BinaryOpKind::Sub, ThreadIdxX(),
                                   Target.intLit(Prefix));
    Tids[I] = MakeIntVar(formatString("tid_%zu", I + 1), TidInit);
    AppendDecl(Tids[I]);
    int Y = Shapes.empty() ? 1 : Shapes[I].first;
    int Z = Shapes.empty() ? 1 : Shapes[I].second;
    Maps[I] = buildThreadMap(Target, MakeIntVar, AppendDecl,
                             formatString("%zu", I + 1), Tids[I], Dims[I],
                             Y, Z);
    Prefix += Dims[I];
  }

  // Per-kernel transformed bodies, then decls and guarded statements.
  std::vector<CompoundStmt *> Bodies(N);
  std::vector<std::vector<Stmt *>> Decls(N);
  Prefix = 0;
  for (size_t I = 0; I < N; ++I) {
    std::vector<Stmt *> Stmts;
    splitDeclsAndStmts(Clones[I]->body(), Decls[I], Stmts);
    Bodies[I] =
        Target.create<CompoundStmt>(SourceLocation(), std::move(Stmts));
    if (!replaceBuiltins(Target, Bodies[I], Maps[I], Diags)) {
      Res.Err = Status(ErrorCode::FusionUnsupported,
                       formatString("kernel %zu: builtin replacement "
                                    "failed:\n%s",
                                    I + 1, Diags.str().c_str()));
      return Res;
    }
    int NumBars = replaceBarriers(Target, Bodies[I],
                                  static_cast<int>(I + 1), Dims[I], Diags);
    if (NumBars < 0) {
      Res.Err = Status(ErrorCode::FusionUnsupported,
                       formatString("kernel %zu: barrier rewrite "
                                    "failed:\n%s",
                                    I + 1, Diags.str().c_str()));
      return Res;
    }
    lowerReturnsToGoto(Target, Bodies[I], EndLabels[I]);
    Prefix += Dims[I];
  }

  for (size_t I = 0; I < N; ++I)
    for (Stmt *S : Decls[I])
      Fused.push_back(S);

  auto Guard = [&](BinaryOpKind Op, int Bound, const std::string &Label) {
    Expr *T = Target.create<BuiltinIdxExpr>(SourceLocation(),
                                            BuiltinIdxKind::ThreadIdx, 0);
    Expr *Cond = Target.binOp(Op, T, Target.intLit(Bound));
    return Target.create<IfStmt>(
        SourceLocation(), Cond,
        Target.create<GotoStmt>(SourceLocation(), Label), nullptr);
  };

  Prefix = 0;
  for (size_t I = 0; I < N; ++I) {
    // Two-sided range guard [Prefix, Prefix + Dims[I]).
    if (Prefix > 0)
      Fused.push_back(Guard(BinaryOpKind::Lt, Prefix, EndLabels[I]));
    if (I + 1 < N)
      Fused.push_back(
          Guard(BinaryOpKind::Ge, Prefix + Dims[I], EndLabels[I]));
    for (Stmt *S : Bodies[I]->body())
      Fused.push_back(S);
    Fused.push_back(Target.create<LabelStmt>(SourceLocation(),
                                             EndLabels[I], nullptr));
    Prefix += Dims[I];
  }

  std::vector<VarDecl *> Params;
  for (size_t I = 0; I < N; ++I) {
    Res.NumParams.push_back(
        static_cast<unsigned>(Clones[I]->params().size()));
    for (VarDecl *P : Clones[I]->params())
      Params.push_back(P);
  }

  std::string Name = FusedName;
  if (Name.empty()) {
    for (size_t I = 0; I < N; ++I) {
      if (I)
        Name += "_";
      Name += Kernels[I]->name();
    }
    Name += "_fused";
  }
  auto *BodyStmt =
      Target.create<CompoundStmt>(SourceLocation(), std::move(Fused));
  Res.Fused = Target.create<FunctionDecl>(
      SourceLocation(), std::move(Name), FunctionDecl::FnKind::Global,
      Types.voidTy(), std::move(Params), BodyStmt);
  Target.translationUnit().functions().push_back(Res.Fused);
  Res.Ok = true;
  return Res;
}
