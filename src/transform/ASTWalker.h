//===-- transform/ASTWalker.h - Generic AST traversal -----------*- C++ -*-===//
//
// Part of the HFuse reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small traversal helpers shared by the HFuse transformation passes:
/// pre-order statement walks, bottom-up expression rewriting, and
/// statement-list rewriting inside compound bodies.
///
//===----------------------------------------------------------------------===//

#ifndef HFUSE_TRANSFORM_ASTWALKER_H
#define HFUSE_TRANSFORM_ASTWALKER_H

#include "cudalang/AST.h"

#include <functional>

namespace hfuse::transform {

/// Visits \p S and every nested statement (not expressions) in pre-order.
void forEachStmt(cuda::Stmt *S, const std::function<void(cuda::Stmt *)> &Fn);

/// Visits every expression reachable from \p S (conditions, increments,
/// initializers, statement expressions, ...) bottom-up without writing
/// to the tree. Analyses must use this instead of an identity
/// rewriteAllExprs: the rewriters store children back through setters,
/// which is a data race when several search workers analyze the shared
/// input-kernel AST concurrently.
void forEachExpr(const cuda::Stmt *S,
                 const std::function<void(const cuda::Expr *)> &Fn);

/// Rewrites an expression tree bottom-up: children are rewritten first,
/// then \p Fn is applied to the node itself; the returned expression
/// replaces it.
cuda::Expr *rewriteExpr(cuda::Expr *E,
                        const std::function<cuda::Expr *(cuda::Expr *)> &Fn);

/// Applies rewriteExpr to every expression slot reachable from \p S
/// (conditions, increments, initializers, statement expressions, ...).
void rewriteAllExprs(cuda::Stmt *S,
                     const std::function<cuda::Expr *(cuda::Expr *)> &Fn);

/// Rewrites every statement position reachable from \p S. \p Fn receives
/// each statement after its children have been rewritten and returns the
/// replacement (possibly the same pointer). Compound bodies splice in the
/// results.
cuda::Stmt *rewriteStmts(cuda::Stmt *S,
                         const std::function<cuda::Stmt *(cuda::Stmt *)> &Fn);

} // namespace hfuse::transform

#endif // HFUSE_TRANSFORM_ASTWALKER_H
