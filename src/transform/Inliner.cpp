//===-- transform/Inliner.cpp - Device-function inlining ------------------===//
//
// Part of the HFuse reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "transform/Inliner.h"

#include "cudalang/ASTCloner.h"
#include "support/StringUtils.h"
#include "transform/ASTWalker.h"

#include <map>

using namespace hfuse;
using namespace hfuse::cuda;
using namespace hfuse::transform;

namespace {

/// True if the expression tree under \p E contains a resolved user call.
bool containsUserCall(Expr *E) {
  bool Found = false;
  rewriteExpr(E, [&](Expr *Sub) -> Expr * {
    if (auto *C = dyn_cast<CallExpr>(Sub))
      if (C->calleeDecl())
        Found = true;
    return Sub;
  });
  return Found;
}

class InlinerImpl {
public:
  InlinerImpl(ASTContext &Ctx, FunctionDecl *F, DiagnosticEngine &Diags)
      : Ctx(Ctx), F(F), Diags(Diags) {}

  bool run() {
    // Fixpoint: each round hoists the innermost call of each statement;
    // bodies spliced in may contain further calls.
    do {
      Changed = false;
      processCompound(F->body());
    } while (Changed && !HadError);
    return !HadError;
  }

private:
  /// Finds the first (innermost, left-to-right) user call in \p E.
  /// Reports an error if any user call sits in a conditionally evaluated
  /// position (?: branches, && / || right-hand sides).
  CallExpr *findCall(Expr *E) {
    if (!E)
      return nullptr;
    switch (E->kind()) {
    case StmtKind::Conditional: {
      auto *C = cast<ConditionalExpr>(E);
      if (CallExpr *Found = findCall(C->cond()))
        return Found;
      if (containsUserCall(C->trueExpr()) || containsUserCall(C->falseExpr()))
        reportUnsupported(E, "a conditional expression");
      return nullptr;
    }
    case StmtKind::Binary: {
      auto *B = cast<BinaryExpr>(E);
      if (B->op() == BinaryOpKind::LogicalAnd ||
          B->op() == BinaryOpKind::LogicalOr) {
        if (CallExpr *Found = findCall(B->lhs()))
          return Found;
        if (containsUserCall(B->rhs()))
          reportUnsupported(E, "a short-circuit operator");
        return nullptr;
      }
      if (CallExpr *Found = findCall(B->lhs()))
        return Found;
      return findCall(B->rhs());
    }
    case StmtKind::Unary:
      return findCall(cast<UnaryExpr>(E)->sub());
    case StmtKind::Cast:
      return findCall(cast<CastExpr>(E)->sub());
    case StmtKind::Paren:
      return findCall(cast<ParenExpr>(E)->sub());
    case StmtKind::Index: {
      auto *I = cast<IndexExpr>(E);
      if (CallExpr *Found = findCall(I->base()))
        return Found;
      return findCall(I->index());
    }
    case StmtKind::Call: {
      auto *C = cast<CallExpr>(E);
      for (Expr *Arg : C->args())
        if (CallExpr *Found = findCall(Arg))
          return Found;
      return C->calleeDecl() ? C : nullptr;
    }
    default:
      return nullptr;
    }
  }

  void reportUnsupported(Expr *E, const char *Where) {
    Diags.error(E->loc(),
                formatString("cannot inline a device call inside %s", Where));
    HadError = true;
  }

  /// Emits the hoisted temps and inlined body of \p Call into \p Out and
  /// returns the variable holding the return value (null for void).
  VarDecl *emitInlinedCall(CallExpr *Call, std::vector<Stmt *> &Out) {
    FunctionDecl *Callee = Call->calleeDecl();
    unsigned N = ++Counter;
    if (N > 1000) {
      Diags.error(Call->loc(), "inlining did not terminate (mutual "
                               "recursion between device functions?)");
      HadError = true;
      return nullptr;
    }
    ASTCloner Cloner(Ctx);

    // Argument temps, evaluated in order.
    assert(Call->args().size() == Callee->params().size() &&
           "Sema should have checked the arity");
    for (size_t I = 0; I < Call->args().size(); ++I) {
      VarDecl *Param = Callee->params()[I];
      auto *Temp = Ctx.create<VarDecl>(
          Call->loc(),
          formatString("__hf_%s_%u", Param->name().c_str(), N),
          Cloner.translateType(Param->type()));
      Temp->setInit(Call->args()[I]);
      Out.push_back(
          Ctx.create<DeclStmt>(Call->loc(), std::vector<VarDecl *>{Temp}));
      Cloner.mapDecl(Param, Temp);
    }

    // Return-value temp.
    VarDecl *RetTemp = nullptr;
    if (!Callee->returnType()->isVoid()) {
      RetTemp = Ctx.create<VarDecl>(Call->loc(),
                                    formatString("__hf_ret_%u", N),
                                    Cloner.translateType(Callee->returnType()));
      Out.push_back(
          Ctx.create<DeclStmt>(Call->loc(), std::vector<VarDecl *>{RetTemp}));
    }

    // Clone the body with parameters substituted.
    Stmt *Body = Cloner.cloneStmt(Callee->body());

    // Keep the callee's labels unique in the caller.
    std::map<std::string, std::string> LabelMap;
    forEachStmt(Body, [&](Stmt *S) {
      if (auto *L = dyn_cast<LabelStmt>(S)) {
        std::string NewName = formatString("%s__hf%u", L->name().c_str(), N);
        LabelMap[L->name()] = NewName;
        L->setName(NewName);
      }
    });
    forEachStmt(Body, [&](Stmt *S) {
      if (auto *G = dyn_cast<GotoStmt>(S)) {
        auto It = LabelMap.find(G->label());
        if (It != LabelMap.end())
          G->setLabel(It->second);
      }
    });

    // return e;  -->  __hf_ret_N = e; goto __hf_end_N;
    std::string EndLabel = formatString("__hf_end_%u", N);
    Body = rewriteStmts(Body, [&](Stmt *S) -> Stmt * {
      auto *R = dyn_cast<ReturnStmt>(S);
      if (!R)
        return S;
      auto *Goto = Ctx.create<GotoStmt>(R->loc(), EndLabel);
      if (!R->value())
        return Goto;
      assert(RetTemp && "value return from void function");
      std::vector<Stmt *> Seq;
      Seq.push_back(Ctx.assignStmt(Ctx.ref(RetTemp), R->value()));
      Seq.push_back(Goto);
      return Ctx.create<CompoundStmt>(R->loc(), std::move(Seq));
    });

    Out.push_back(Body);
    Out.push_back(Ctx.create<LabelStmt>(Call->loc(), EndLabel,
                                        /*Sub=*/nullptr));
    return RetTemp;
  }

  /// Replaces node \p From with \p To inside the expression tree rooted
  /// at the statement's expressions.
  static Expr *replaceInExpr(Expr *Root, Expr *From, Expr *To) {
    return rewriteExpr(Root,
                       [&](Expr *E) -> Expr * { return E == From ? To : E; });
  }

  /// Hoists calls out of one hoistable expression slot. Returns the
  /// rewritten expression; hoisted statements are appended to \p Out.
  Expr *hoistCalls(Expr *E, std::vector<Stmt *> &Out) {
    while (E && !HadError) {
      CallExpr *Call = findCall(E);
      if (!Call)
        return E;
      Changed = true;
      VarDecl *RetTemp = emitInlinedCall(Call, Out);
      if (Call == E && !RetTemp)
        return nullptr; // whole statement was a void call
      if (!RetTemp) {
        reportUnsupported(Call, "an expression (void return type)");
        return E;
      }
      E = replaceInExpr(E, Call, Ctx.ref(RetTemp));
    }
    return E;
  }

  /// Wraps controlled statements that contain calls into compounds so
  /// hoisted statements have a place to go.
  Stmt *wrapForHoisting(Stmt *S) {
    if (!S || isa<CompoundStmt>(S))
      return S;
    return Ctx.create<CompoundStmt>(S->loc(), std::vector<Stmt *>{S});
  }

  bool stmtNeedsWrap(Stmt *S) {
    if (!S || isa<CompoundStmt>(S))
      return false;
    bool Found = false;
    forEachStmt(S, [&](Stmt *Sub) {
      auto CheckExpr = [&](Expr *E) {
        if (E && containsUserCall(E))
          Found = true;
      };
      switch (Sub->kind()) {
      case StmtKind::ExprStmtKind:
        CheckExpr(cast<ExprStmt>(Sub)->expr());
        break;
      case StmtKind::Decl:
        for (VarDecl *V : cast<DeclStmt>(Sub)->decls())
          CheckExpr(V->init());
        break;
      case StmtKind::If:
        CheckExpr(cast<IfStmt>(Sub)->cond());
        break;
      case StmtKind::Return:
        CheckExpr(cast<ReturnStmt>(Sub)->value());
        break;
      default:
        break;
      }
    });
    return Found;
  }

  void checkLoopExprs(Stmt *S) {
    auto Check = [&](Expr *E, const char *Where) {
      if (E && containsUserCall(E)) {
        Diags.error(E->loc(),
                    formatString("cannot inline a device call inside %s",
                                 Where));
        HadError = true;
      }
    };
    if (auto *Fo = dyn_cast<ForStmt>(S)) {
      Check(Fo->cond(), "a for-loop condition");
      Check(Fo->inc(), "a for-loop increment");
      if (auto *Init = dyn_cast_or_null<DeclStmt>(Fo->init()))
        for (VarDecl *V : Init->decls())
          Check(V->init(), "a for-loop initializer");
      if (auto *Init = dyn_cast_or_null<ExprStmt>(Fo->init()))
        Check(Init->expr(), "a for-loop initializer");
    }
    if (auto *W = dyn_cast<WhileStmt>(S))
      Check(W->cond(), "a while condition");
  }

  void processStmt(Stmt *S) {
    if (!S || HadError)
      return;
    switch (S->kind()) {
    case StmtKind::Compound:
      processCompound(cast<CompoundStmt>(S));
      return;
    case StmtKind::If: {
      auto *I = cast<IfStmt>(S);
      if (stmtNeedsWrap(I->thenStmt()))
        I->setThen(wrapForHoisting(I->thenStmt()));
      if (stmtNeedsWrap(I->elseStmt()))
        I->setElse(wrapForHoisting(I->elseStmt()));
      processStmt(I->thenStmt());
      processStmt(I->elseStmt());
      return;
    }
    case StmtKind::For: {
      auto *Fo = cast<ForStmt>(S);
      checkLoopExprs(Fo);
      if (stmtNeedsWrap(Fo->body()))
        Fo->setBody(wrapForHoisting(Fo->body()));
      processStmt(Fo->body());
      return;
    }
    case StmtKind::While: {
      auto *W = cast<WhileStmt>(S);
      checkLoopExprs(W);
      if (stmtNeedsWrap(W->body()))
        W->setBody(wrapForHoisting(W->body()));
      processStmt(W->body());
      return;
    }
    case StmtKind::Label: {
      auto *L = cast<LabelStmt>(S);
      if (stmtNeedsWrap(L->sub()))
        L->setSub(wrapForHoisting(L->sub()));
      processStmt(L->sub());
      return;
    }
    default:
      return;
    }
  }

  void processCompound(CompoundStmt *C) {
    std::vector<Stmt *> NewBody;
    NewBody.reserve(C->body().size());
    for (Stmt *S : C->body()) {
      if (HadError)
        break;
      switch (S->kind()) {
      case StmtKind::ExprStmtKind: {
        auto *ES = cast<ExprStmt>(S);
        if (ES->expr())
          ES->setExpr(hoistCalls(ES->expr(), NewBody));
        break;
      }
      case StmtKind::Decl: {
        auto *DS = cast<DeclStmt>(S);
        for (VarDecl *V : DS->decls())
          if (V->init())
            V->setInit(hoistCalls(V->init(), NewBody));
        break;
      }
      case StmtKind::If: {
        auto *I = cast<IfStmt>(S);
        I->setCond(hoistCalls(I->cond(), NewBody));
        processStmt(I);
        break;
      }
      case StmtKind::Return: {
        auto *R = cast<ReturnStmt>(S);
        if (R->value())
          R->setValue(hoistCalls(R->value(), NewBody));
        break;
      }
      default:
        processStmt(S);
        break;
      }
      NewBody.push_back(S);
    }
    C->body() = std::move(NewBody);
  }

  ASTContext &Ctx;
  FunctionDecl *F;
  DiagnosticEngine &Diags;
  unsigned Counter = 0;
  bool Changed = false;
  bool HadError = false;
};

} // namespace

bool hfuse::transform::inlineDeviceCalls(ASTContext &Ctx, FunctionDecl *F,
                                         DiagnosticEngine &Diags) {
  return InlinerImpl(Ctx, F, Diags).run();
}
