//===-- transform/Pipeline.h - HFuse preprocessing pipeline -----*- C++ -*-===//
//
// Part of the HFuse reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The kernel preprocessing pipeline of HFuse (paper §III: "Macros are
/// preprocessed, function calls are all inlined, and local variable
/// declarations are lifted to the top of the function"): Sema →
/// device-call inlining → declaration lifting, with re-analysis between
/// stages. Fusion passes require their inputs in this form.
///
//===----------------------------------------------------------------------===//

#ifndef HFUSE_TRANSFORM_PIPELINE_H
#define HFUSE_TRANSFORM_PIPELINE_H

#include "cudalang/AST.h"
#include "support/Diagnostics.h"
#include "support/Status.h"

#include <memory>
#include <string_view>

namespace hfuse::transform {

/// Removes Sema-inserted implicit casts so Sema can be re-run after a
/// transformation mutated the tree.
void stripImplicitCasts(cuda::Stmt *S);

/// Runs the full preprocessing pipeline on \p F in place. The
/// translation unit of \p Ctx must contain any __device__ functions \p F
/// calls. Returns false (with diagnostics) on failure; on success \p F
/// is Sema-resolved, call-free, and decl-lifted.
bool preprocessKernel(cuda::ASTContext &Ctx, cuda::FunctionDecl *F,
                      DiagnosticEngine &Diags);

/// A parsed and preprocessed kernel together with the context that owns
/// it. Movable; the kernel pointer stays valid for the context lifetime.
struct PreprocessedKernel {
  std::unique_ptr<cuda::ASTContext> Ctx;
  cuda::FunctionDecl *Kernel = nullptr;
};

/// Parses \p Source, finds the kernel \p KernelName (or the only
/// __global__ function when empty), and preprocesses it. Returns an
/// engaged result only on success.
std::unique_ptr<PreprocessedKernel>
parseAndPreprocess(std::string_view Source, const std::string &KernelName,
                   DiagnosticEngine &Diags);

/// Same, reporting which phase rejected the input as a structured
/// Status — ParseError for lexer/parser failures, SemaError for
/// analysis, kernel lookup, or preprocessing failures — with the
/// rendered diagnostics as the message. Never throws or asserts on
/// malformed input.
Expected<std::unique_ptr<PreprocessedKernel>>
parseAndPreprocessOr(std::string_view Source, const std::string &KernelName,
                     DiagnosticEngine &Diags);

} // namespace hfuse::transform

#endif // HFUSE_TRANSFORM_PIPELINE_H
