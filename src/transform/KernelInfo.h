//===-- transform/KernelInfo.h - Kernel resource analysis -------*- C++ -*-===//
//
// Part of the HFuse reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static analysis of a kernel's declared resources: shared-memory
/// footprint, barrier count, and fusibility preconditions. The fusion
/// configuration search (paper Figure 6) uses ShMem() from here.
///
//===----------------------------------------------------------------------===//

#ifndef HFUSE_TRANSFORM_KERNELINFO_H
#define HFUSE_TRANSFORM_KERNELINFO_H

#include "cudalang/AST.h"

#include <cstdint>

namespace hfuse::transform {

/// Statically derivable kernel resource facts.
struct KernelResources {
  /// Total bytes of statically sized __shared__ declarations.
  uint64_t StaticSharedBytes = 0;
  /// True when the kernel declares `extern __shared__` memory whose size
  /// comes from the launch configuration.
  bool UsesExternShared = false;
  /// Number of __syncthreads() calls in the body.
  unsigned NumBarriers = 0;
  /// True when the kernel reads threadIdx/blockDim .y or .z.
  bool UsesMultiDimBuiltins = false;
};

/// Analyzes \p F (which should be Sema-resolved).
KernelResources analyzeKernel(const cuda::FunctionDecl *F);

} // namespace hfuse::transform

#endif // HFUSE_TRANSFORM_KERNELINFO_H
