//===-- transform/Renamer.h - Fresh-name variable renaming ------*- C++ -*-===//
//
// Part of the HFuse reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Guarantees name freshness when two kernels are merged into one fused
/// function (paper §III-C: "It renames each local variable to make sure
/// that they will not cause name conflicts in the fused kernel").
///
/// The renamer operates on Sema-resolved functions: DeclRefExpr nodes
/// carry decl pointers, GotoStmt nodes carry label targets, so renaming a
/// declaration only requires syncing the stored spellings afterwards.
///
//===----------------------------------------------------------------------===//

#ifndef HFUSE_TRANSFORM_RENAMER_H
#define HFUSE_TRANSFORM_RENAMER_H

#include "cudalang/AST.h"

#include <set>
#include <string>

namespace hfuse::transform {

/// Tracks names already taken in the fused kernel and renames colliding
/// declarations and labels as functions are merged in.
class Renamer {
public:
  /// Marks \p Name as taken (prologue variables, etc.).
  void reserve(const std::string &Name) { Used.insert(Name); }

  bool isUsed(const std::string &Name) const { return Used.count(Name) != 0; }

  /// Returns \p Base if free, otherwise Base+Suffix, otherwise
  /// Base+Suffix+counter; the result is marked as taken.
  std::string freshName(const std::string &Base, const std::string &Suffix);

  /// Renames every parameter, local variable, and label of \p F that
  /// collides with an already-used name, appending \p Suffix. All names
  /// of \p F (renamed or not) become reserved. DeclRef and Goto
  /// spellings are synced afterwards.
  void renameFunction(cuda::FunctionDecl *F, const std::string &Suffix);

private:
  std::set<std::string> Used;
};

} // namespace hfuse::transform

#endif // HFUSE_TRANSFORM_RENAMER_H
