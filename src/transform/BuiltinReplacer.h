//===-- transform/BuiltinReplacer.h - threadIdx/blockDim rewrite -*- C++ -*-===//
//
// Part of the HFuse reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replaces `threadIdx.*` and `blockDim.*` inside one input kernel's
/// statements with references to the fused kernel's per-kernel thread-id
/// and block-dimension variables (paper Figure 5 line 4 for the
/// one-dimensional case; the prologue of paper Figure 4 for kernels with
/// .y/.z block sub-dimensions). `blockIdx.x` and `gridDim.x` are left
/// alone: both input kernels share the fused grid.
///
//===----------------------------------------------------------------------===//

#ifndef HFUSE_TRANSFORM_BUILTINREPLACER_H
#define HFUSE_TRANSFORM_BUILTINREPLACER_H

#include "cudalang/AST.h"
#include "support/Diagnostics.h"

namespace hfuse::transform {

/// The fused kernel's stand-in variables for one input kernel's
/// threadIdx/blockDim, per block sub-dimension. A null entry means the
/// input kernel's launch shape has extent 1 in that dimension, so
/// `threadIdx.<d>` is the constant 0 and `blockDim.<d>` the constant 1
/// (exactly CUDA's semantics for a 1-wide dimension).
struct KernelThreadMap {
  cuda::VarDecl *Tid[3] = {nullptr, nullptr, nullptr};
  cuda::VarDecl *Size[3] = {nullptr, nullptr, nullptr};
};

/// Rewrites builtins in \p Body according to \p Map. Uses of `.y`/`.z`
/// grid builtins (blockIdx/gridDim) are reported as errors — grids are
/// one-dimensional in this reproduction. Returns false on error.
bool replaceBuiltins(cuda::ASTContext &Ctx, cuda::Stmt *Body,
                     const KernelThreadMap &Map, DiagnosticEngine &Diags);

/// Returns true if \p Body references threadIdx/blockDim .y or .z (such
/// a kernel needs a multi-dimensional partition shape when fusing, and
/// cannot be fused vertically with a kernel of a different shape).
bool usesMultiDimBuiltins(const cuda::Stmt *Body);

} // namespace hfuse::transform

#endif // HFUSE_TRANSFORM_BUILTINREPLACER_H
