//===-- transform/Renamer.cpp - Fresh-name variable renaming --------------===//
//
// Part of the HFuse reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "transform/Renamer.h"

#include "transform/ASTWalker.h"

#include <map>

using namespace hfuse;
using namespace hfuse::cuda;
using namespace hfuse::transform;

std::string Renamer::freshName(const std::string &Base,
                               const std::string &Suffix) {
  std::string Candidate = Base;
  if (Used.count(Candidate)) {
    Candidate = Base + Suffix;
    unsigned Counter = 2;
    while (Used.count(Candidate))
      Candidate = Base + Suffix + "_" + std::to_string(Counter++);
  }
  Used.insert(Candidate);
  return Candidate;
}

void Renamer::renameFunction(FunctionDecl *F, const std::string &Suffix) {
  // Rename declarations (params first, then locals in source order).
  // Variable references carry resolved decl pointers, so only the
  // spelling sync below is needed.
  auto RenameVar = [&](VarDecl *V) { V->setName(freshName(V->name(), Suffix)); };
  for (VarDecl *P : F->params())
    RenameVar(P);
  forEachStmt(F->body(), [&](Stmt *S) {
    if (auto *DS = dyn_cast<DeclStmt>(S))
      for (VarDecl *V : DS->decls())
        RenameVar(V);
  });

  // Labels are renamed through a name map: goto targets may be
  // unresolved (e.g. right after cloning), but label names are unique
  // within one function, so name-based remapping is unambiguous.
  std::map<std::string, std::string> LabelMap;
  forEachStmt(F->body(), [&](Stmt *S) {
    if (auto *L = dyn_cast<LabelStmt>(S)) {
      std::string NewName = freshName(L->name(), Suffix);
      LabelMap.emplace(L->name(), NewName);
      L->setName(NewName);
    }
  });
  forEachStmt(F->body(), [&](Stmt *S) {
    if (auto *G = dyn_cast<GotoStmt>(S)) {
      auto It = LabelMap.find(G->label());
      if (It != LabelMap.end())
        G->setLabel(It->second);
    }
  });

  // Sync reference spellings with the (possibly renamed) declarations.
  rewriteAllExprs(F->body(), [](Expr *E) -> Expr * {
    if (auto *Ref = dyn_cast<DeclRefExpr>(E))
      if (Ref->decl())
        Ref->setName(Ref->decl()->name());
    return E;
  });
}
