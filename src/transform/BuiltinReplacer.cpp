//===-- transform/BuiltinReplacer.cpp - threadIdx/blockDim rewrite --------===//
//
// Part of the HFuse reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "transform/BuiltinReplacer.h"

#include "transform/ASTWalker.h"

using namespace hfuse;
using namespace hfuse::cuda;
using namespace hfuse::transform;

bool hfuse::transform::replaceBuiltins(ASTContext &Ctx, Stmt *Body,
                                       const KernelThreadMap &Map,
                                       DiagnosticEngine &Diags) {
  bool Ok = true;
  rewriteAllExprs(Body, [&](Expr *E) -> Expr * {
    auto *B = dyn_cast<BuiltinIdxExpr>(E);
    if (!B)
      return E;
    unsigned D = B->dim();
    switch (B->builtin()) {
    case BuiltinIdxKind::ThreadIdx:
      // A 1-wide dimension has threadIdx.<d> == 0 for every thread.
      return Map.Tid[D] ? static_cast<Expr *>(Ctx.ref(Map.Tid[D]))
                        : static_cast<Expr *>(Ctx.intLit(0));
    case BuiltinIdxKind::BlockDim:
      return Map.Size[D] ? static_cast<Expr *>(Ctx.ref(Map.Size[D]))
                         : static_cast<Expr *>(Ctx.intLit(1));
    case BuiltinIdxKind::BlockIdx:
    case BuiltinIdxKind::GridDim:
      // Shared between the input kernels; grids are one-dimensional.
      if (D != 0) {
        Diags.error(B->loc(), "grids are one-dimensional: blockIdx/gridDim "
                              "only support .x");
        Ok = false;
      }
      return E;
    }
    return E;
  });
  return Ok;
}

bool hfuse::transform::usesMultiDimBuiltins(const Stmt *Body) {
  // Read-only walk: runs on the shared input-kernel AST from
  // concurrent search workers (see countSyncthreads).
  bool Found = false;
  forEachExpr(Body, [&](const Expr *E) {
    if (const auto *B = dyn_cast<BuiltinIdxExpr>(E)) {
      bool IsThreadLocal = B->builtin() == BuiltinIdxKind::ThreadIdx ||
                           B->builtin() == BuiltinIdxKind::BlockDim;
      if (IsThreadLocal && B->dim() != 0)
        Found = true;
    }
  });
  return Found;
}
