//===-- transform/Inliner.h - Device-function inlining ----------*- C++ -*-===//
//
// Part of the HFuse reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Inlines all user `__device__` function calls into a kernel (paper
/// §III-C: "We also use the built-in functionalities from the Clang
/// front-end to inline all function calls in the input kernels"). Calls
/// are hoisted out of statements in evaluation order:
///
///   x = f(a, b) + 1;
///
/// becomes
///
///   int __hf_arg0_1; int __hf_arg1_1; int __hf_ret_1;
///   __hf_arg0_1 = a; __hf_arg1_1 = b;
///   { <body of f with params -> arg temps, return e -> ret temp + goto> }
///   __hf_end_1: ;
///   x = __hf_ret_1 + 1;
///
/// Arguments are always materialized into temps, so multiple parameter
/// uses never duplicate side effects or work.
///
/// Limitations (diagnosed as errors): calls in loop conditions/increments
/// and calls under short-circuit or ?: operators are not supported;
/// recursion is already rejected by Sema. None of the paper's benchmark
/// kernels need these.
///
//===----------------------------------------------------------------------===//

#ifndef HFUSE_TRANSFORM_INLINER_H
#define HFUSE_TRANSFORM_INLINER_H

#include "cudalang/AST.h"
#include "support/Diagnostics.h"

namespace hfuse::transform {

/// Inlines every user call in \p F (in place, iterating to a fixpoint for
/// nested calls). Returns false and reports diagnostics on unsupported
/// call positions. \p F must be Sema-resolved; run Sema again afterwards.
bool inlineDeviceCalls(cuda::ASTContext &Ctx, cuda::FunctionDecl *F,
                       DiagnosticEngine &Diags);

} // namespace hfuse::transform

#endif // HFUSE_TRANSFORM_INLINER_H
