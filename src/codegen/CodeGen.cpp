//===-- codegen/CodeGen.cpp - CuLite to SASS-lite lowering ----------------===//
//
// Part of the HFuse reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "codegen/CodeGen.h"

#include "cudalang/ConstEval.h"

#include "support/StringUtils.h"

#include <bit>
#include <cstdio>
#include <functional>
#include <map>
#include <vector>

using namespace hfuse;
using namespace hfuse::cuda;
using namespace hfuse::ir;
using namespace hfuse::codegen;

namespace {

enum class AddrSpace : uint8_t { Global, Shared, Local, Unknown };

/// Where a CuLite variable lives after lowering.
struct VarSlot {
  enum class Kind : uint8_t { ScalarReg, SharedArray, LocalArray } K =
      Kind::ScalarReg;
  Reg R = NoReg;         // ScalarReg
  uint32_t Offset = 0;   // arrays: byte offset in their space
  AddrSpace PtrSpace = AddrSpace::Unknown; // pointer-typed scalars
};

/// The value of an expression: a register plus, for pointers, the
/// address space the pointer refers to.
struct RValue {
  Reg R = NoReg;
  AddrSpace Space = AddrSpace::Unknown;
};

/// An assignable location.
struct LValue {
  enum class Kind : uint8_t { VarReg, Mem } K = Kind::VarReg;
  Reg VarR = NoReg;               // VarReg
  const VarDecl *Var = nullptr;   // VarReg: for pointer-space updates
  Reg Addr = NoReg;               // Mem
  int64_t Offset = 0;             // constant byte offset folded into Ld/St
  AddrSpace Space = AddrSpace::Unknown;
  const Type *Ty = nullptr;       // value type of the location
};

class CodeGenImpl {
public:
  CodeGenImpl(const FunctionDecl *F, DiagnosticEngine &Diags)
      : F(F), Diags(Diags) {}

  std::unique_ptr<IRKernel> run();

private:
  //===--------------------------------------------------------------------===//
  // Builder plumbing
  //===--------------------------------------------------------------------===//

  Reg newReg(Width W) {
    K->RegWidths.push_back(W);
    assert(K->RegWidths.size() < NoReg && "virtual register overflow");
    return static_cast<Reg>(K->RegWidths.size() - 1);
  }

  void emit(Instruction I) {
    assert(!Sealed && "emitting into a sealed block");
    K->Blocks[CurBlock].Insts.push_back(I);
    if (I.isTerminator())
      Sealed = true;
  }

  unsigned newBlock() { return K->addBlock(); }

  /// Ends the current block with a fallthrough branch if needed and
  /// makes \p B current.
  void startBlock(unsigned B) {
    if (!Sealed)
      emitBra(B);
    CurBlock = B;
    Sealed = false;
  }

  void emitBra(unsigned Target) {
    Instruction I;
    I.Op = Opcode::Bra;
    I.Imm = Target;
    emit(I);
  }

  void emitCBra(Reg Cond, unsigned TrueBB, unsigned FalseBB) {
    Instruction I;
    I.Op = Opcode::CBra;
    I.Src[0] = Cond;
    I.Imm = TrueBB;
    I.Imm2 = FalseBB;
    emit(I);
  }

  Reg emitMovImm(uint64_t Bits, Width W) {
    Reg R = newReg(W);
    Instruction I;
    I.Op = Opcode::MovImm;
    I.W = W;
    I.Dst = R;
    I.Imm = static_cast<int64_t>(Bits);
    emit(I);
    return R;
  }

  Reg emitMov(Reg Src, Width W) {
    Reg R = newReg(W);
    Instruction I;
    I.Op = Opcode::Mov;
    I.W = W;
    I.Dst = R;
    I.Src[0] = Src;
    emit(I);
    return R;
  }

  Reg emitBinOp(Opcode Op, Width W, Reg A, Reg B) {
    Reg R = newReg(W);
    Instruction I;
    I.Op = Op;
    I.W = W;
    I.Dst = R;
    I.Src[0] = A;
    I.Src[1] = B;
    emit(I);
    return R;
  }

  Reg emitUnOp(Opcode Op, Width W, Reg A) {
    Reg R = newReg(W);
    Instruction I;
    I.Op = Op;
    I.W = W;
    I.Dst = R;
    I.Src[0] = A;
    emit(I);
    return R;
  }

  Reg emitCmp(Opcode Op, CmpPred P, Width W, Reg A, Reg B) {
    Reg R = newReg(Width::W32);
    Instruction I;
    I.Op = Op;
    I.Pred = P;
    I.W = W;
    I.Dst = R;
    I.Src[0] = A;
    I.Src[1] = B;
    emit(I);
    return R;
  }

  //===--------------------------------------------------------------------===//
  // Type helpers
  //===--------------------------------------------------------------------===//

  static Width widthOf(const Type *T) {
    if (T->isPointer())
      return Width::W64;
    return T->bitWidth() == 64 ? Width::W64 : Width::W32;
  }

  static bool isFloatTy(const Type *T) { return T->isFloating(); }

  void error(SourceLocation Loc, std::string Msg) {
    Diags.error(Loc, std::move(Msg));
    Failed = true;
  }

  /// Width used for address arithmetic in \p Space.
  static Width addrWidth(AddrSpace Space) {
    return Space == AddrSpace::Global ? Width::W64 : Width::W32;
  }

  //===--------------------------------------------------------------------===//
  // Conversions
  //===--------------------------------------------------------------------===//

  Reg emitConvert(Reg V, const Type *From, const Type *To,
                  SourceLocation Loc) {
    if (From == To)
      return V;
    if (From->isPointer() && To->isPointer())
      return V; // reinterpret: same bits, same space (caller keeps space)
    if (From->isArray() && To->isPointer())
      return V; // decay: an array value is already its address
    if (!From->isScalar() || !To->isScalar()) {
      error(Loc, "unsupported conversion in codegen");
      return V;
    }

    bool FromF = isFloatTy(From);
    bool ToF = isFloatTy(To);
    Width FW = widthOf(From);
    Width TW = widthOf(To);

    if (To->isBool())
      return emitTestNonZero(V, From);

    if (FromF && ToF) {
      if (FW == TW)
        return V;
      return emitCvt(Opcode::CvtF2F, TW, FW, V);
    }
    if (FromF && !ToF) {
      Opcode Op = To->isSignedInteger() ? Opcode::CvtF2SI : Opcode::CvtF2UI;
      Reg R = emitCvt(Op, TW, FW, V);
      return emitSubWordTrunc(R, To);
    }
    if (!FromF && ToF) {
      // Bool and sub-word ints are stored extended; convert from i32/i64.
      Opcode Op = From->isSignedInteger() ? Opcode::CvtSI2F : Opcode::CvtUI2F;
      return emitCvt(Op, TW, FW, V);
    }

    // Integer -> integer.
    if (TW == FW)
      return emitSubWordTrunc(V, To);
    if (TW == Width::W32 && FW == Width::W64) {
      Reg R = emitCvt(Opcode::CvtZExt, Width::W32, Width::W64, V);
      return emitSubWordTrunc(R, To);
    }
    // Widening: sign depends on the source type.
    Opcode Op = From->isSignedInteger() ? Opcode::CvtSExt : Opcode::CvtZExt;
    return emitCvt(Op, Width::W64, Width::W32, V);
  }

  Reg emitCvt(Opcode Op, Width W, Width SrcW, Reg V) {
    Reg R = newReg(W);
    Instruction I;
    I.Op = Op;
    I.W = W;
    I.SrcW = SrcW;
    I.Dst = R;
    I.Src[0] = V;
    emit(I);
    return R;
  }

  /// Canonicalizes a value stored into an 8-bit variable.
  Reg emitSubWordTrunc(Reg V, const Type *To) {
    if (To->kind() == TypeKind::UChar) {
      Reg Mask = emitMovImm(0xFF, Width::W32);
      return emitBinOp(Opcode::And, Width::W32, V, Mask);
    }
    if (To->kind() == TypeKind::Char) {
      Reg Sh = emitMovImm(24, Width::W32);
      Reg L = emitBinOp(Opcode::Shl, Width::W32, V, Sh);
      return emitBinOp(Opcode::ShrS, Width::W32, L, Sh);
    }
    return V;
  }

  /// dst = (V != 0) as 0/1, respecting float semantics.
  Reg emitTestNonZero(Reg V, const Type *Ty) {
    if (Ty->isBool())
      return V;
    Width W = widthOf(Ty);
    Reg Zero = emitMovImm(0, W);
    Opcode Op = isFloatTy(Ty) ? Opcode::FCmp : Opcode::ICmpU;
    return emitCmp(Op, CmpPred::NE, W, V, Zero);
  }

  //===--------------------------------------------------------------------===//
  // Variables, shared memory layout
  //===--------------------------------------------------------------------===//

  void layoutSharedAndLocals();
  void declareVar(const VarDecl *V, SourceLocation Loc);

  VarSlot &slotOf(const VarDecl *V, SourceLocation Loc) {
    auto It = Slots.find(V);
    if (It == Slots.end()) {
      // Should not happen on Sema-checked input.
      error(Loc, formatString("codegen: unknown variable '%s'",
                              V->name().c_str()));
      thread_local VarSlot Dummy;
      return Dummy;
    }
    return It->second;
  }

  //===--------------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------------===//

  RValue emitExpr(const Expr *E);
  RValue emitCallExpr(const CallExpr *E);
  LValue emitLValue(const Expr *E);
  RValue emitLoad(const LValue &L);
  void emitStore(const LValue &L, RValue V);
  RValue emitIncDec(const UnaryExpr *E);
  RValue emitBinary(const BinaryExpr *E);
  RValue emitAssign(const BinaryExpr *E);
  RValue emitArith(BinaryOpKind Op, RValue L, RValue R, const Type *LTy,
                   const Type *RTy, const Type *ResTy, SourceLocation Loc);
  RValue emitIntDivRem(bool IsRem, bool Signed, Width W, RValue L, RValue R,
                       const Type *RTy);
  void emitCondBranch(const Expr *E, unsigned TrueBB, unsigned FalseBB);
  RValue emitBoolMaterialize(const Expr *E);

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  void emitStmt(const Stmt *S);
  void emitCompound(const CompoundStmt *S);
  unsigned labelBlock(const std::string &Name) {
    auto [It, Inserted] = LabelBlocks.emplace(Name, 0);
    if (Inserted)
      It->second = newBlock();
    return It->second;
  }

  const FunctionDecl *F;
  DiagnosticEngine &Diags;
  std::unique_ptr<IRKernel> K;
  unsigned CurBlock = 0;
  bool Sealed = false;
  bool Failed = false;

  /// RHS expression of the binary op currently lowered by emitArith;
  /// lets division lowering detect constant divisors.
  const Expr *RhsExprForDiv = nullptr;

  std::map<const VarDecl *, VarSlot> Slots;
  std::map<std::string, unsigned> LabelBlocks;
  std::vector<unsigned> BreakStack;
  std::vector<unsigned> ContinueStack;
};

//===----------------------------------------------------------------------===//
// Layout
//===----------------------------------------------------------------------===//

void CodeGenImpl::layoutSharedAndLocals() {
  // First pass: statically sized shared arrays, in declaration order.
  uint32_t SharedTop = 0;
  uint32_t LocalTop = 0;
  std::vector<const VarDecl *> ExternShared;

  std::function<void(const Stmt *)> Walk = [&](const Stmt *S) {
    if (!S)
      return;
    if (const auto *DS = dyn_cast<DeclStmt>(S)) {
      for (const VarDecl *V : DS->decls()) {
        if (!V->type()->isArray())
          continue;
        if (V->isExternShared()) {
          ExternShared.push_back(V);
          continue;
        }
        uint32_t Size = static_cast<uint32_t>(V->type()->storeSize());
        uint32_t Aligned = (Size + 7) & ~7u;
        VarSlot Slot;
        Slot.Offset = V->isShared() ? SharedTop : LocalTop;
        Slot.K = V->isShared() ? VarSlot::Kind::SharedArray
                               : VarSlot::Kind::LocalArray;
        Slots[V] = Slot;
        if (V->isShared())
          SharedTop += Aligned;
        else
          LocalTop += Aligned;
      }
      return;
    }
    if (const auto *C = dyn_cast<CompoundStmt>(S)) {
      for (const Stmt *Sub : C->body())
        Walk(Sub);
      return;
    }
    if (const auto *I = dyn_cast<IfStmt>(S)) {
      Walk(I->thenStmt());
      Walk(I->elseStmt());
      return;
    }
    if (const auto *Fo = dyn_cast<ForStmt>(S)) {
      Walk(Fo->init());
      Walk(Fo->body());
      return;
    }
    if (const auto *W = dyn_cast<WhileStmt>(S)) {
      Walk(W->body());
      return;
    }
    if (const auto *L = dyn_cast<LabelStmt>(S)) {
      Walk(L->sub());
      return;
    }
  };
  Walk(F->body());

  K->StaticSharedBytes = SharedTop;
  K->LocalBytes = LocalTop;
  // The dynamic shared region starts right after the static allocations;
  // every extern array aliases it, as in CUDA.
  for (const VarDecl *V : ExternShared) {
    VarSlot Slot;
    Slot.K = VarSlot::Kind::SharedArray;
    Slot.Offset = SharedTop;
    Slots[V] = Slot;
    K->UsesDynamicShared = true;
  }
}

void CodeGenImpl::declareVar(const VarDecl *V, SourceLocation Loc) {
  if (V->type()->isArray())
    return; // placed by layoutSharedAndLocals
  if (V->isShared()) {
    error(Loc, "scalar __shared__ variables are not supported; use a "
               "one-element array");
    return;
  }
  if (Slots.count(V))
    return;
  VarSlot Slot;
  Slot.K = VarSlot::Kind::ScalarReg;
  Slot.R = newReg(widthOf(V->type()));
  Slots[V] = Slot;
}

//===----------------------------------------------------------------------===//
// L-values
//===----------------------------------------------------------------------===//

LValue CodeGenImpl::emitLValue(const Expr *E) {
  switch (E->kind()) {
  case StmtKind::Paren:
    return emitLValue(cast<ParenExpr>(E)->sub());
  case StmtKind::DeclRef: {
    const auto *Ref = cast<DeclRefExpr>(E);
    VarSlot &Slot = slotOf(Ref->decl(), E->loc());
    if (Slot.K != VarSlot::Kind::ScalarReg) {
      error(E->loc(), "arrays are not assignable");
      return LValue();
    }
    LValue L;
    L.K = LValue::Kind::VarReg;
    L.VarR = Slot.R;
    L.Var = Ref->decl();
    L.Ty = Ref->decl()->type();
    return L;
  }
  case StmtKind::Index: {
    const auto *I = cast<IndexExpr>(E);
    RValue Base = emitExpr(I->base());
    const Type *ElemTy = E->type();
    const Type *IdxTy = I->index()->type();
    AddrSpace Space = Base.Space;
    if (Space == AddrSpace::Unknown) {
      error(E->loc(), "cannot infer the address space of this access");
      Space = AddrSpace::Global;
    }
    // Constant indices fold into the memory operand (SASS: LDG [Rn+imm]).
    if (auto ConstIdx = evalConstInt(I->index())) {
      LValue L;
      L.K = LValue::Kind::Mem;
      L.Addr = Base.R;
      L.Offset = *ConstIdx * static_cast<int64_t>(ElemTy->storeSize());
      L.Space = Space;
      L.Ty = ElemTy;
      return L;
    }
    RValue Idx = emitExpr(I->index());
    Width AW = addrWidth(Space);
    // Scale the index to bytes in the address width.
    Reg IdxR = Idx.R;
    if (AW == Width::W64 && widthOf(IdxTy) == Width::W32) {
      Opcode Ext = IdxTy->isSignedInteger() || IdxTy->isBool()
                       ? Opcode::CvtSExt
                       : Opcode::CvtZExt;
      IdxR = emitCvt(Ext, Width::W64, Width::W32, IdxR);
    } else if (AW == Width::W32 && widthOf(IdxTy) == Width::W64) {
      IdxR = emitCvt(Opcode::CvtZExt, Width::W32, Width::W64, IdxR);
    }
    uint64_t ElemSize = ElemTy->storeSize();
    Reg OffR;
    if (ElemSize == 1) {
      OffR = IdxR;
    } else if ((ElemSize & (ElemSize - 1)) == 0) {
      Reg Sh = emitMovImm(static_cast<uint64_t>(std::countr_zero(ElemSize)),
                          Width::W32);
      OffR = emitBinOp(Opcode::Shl, AW, IdxR, Sh);
    } else {
      Reg Sz = emitMovImm(ElemSize, AW);
      OffR = emitBinOp(Opcode::IMul, AW, IdxR, Sz);
    }
    LValue L;
    L.K = LValue::Kind::Mem;
    L.Addr = emitBinOp(Opcode::IAdd, AW, Base.R, OffR);
    L.Space = Space;
    L.Ty = ElemTy;
    return L;
  }
  case StmtKind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    if (U->op() == UnaryOpKind::Deref) {
      RValue P = emitExpr(U->sub());
      LValue L;
      L.K = LValue::Kind::Mem;
      L.Addr = P.R;
      L.Space = P.Space == AddrSpace::Unknown ? AddrSpace::Global : P.Space;
      L.Ty = E->type();
      return L;
    }
    error(E->loc(), "expression is not assignable");
    return LValue();
  }
  default:
    error(E->loc(), "expression is not assignable");
    return LValue();
  }
}

RValue CodeGenImpl::emitLoad(const LValue &L) {
  if (L.K == LValue::Kind::VarReg) {
    RValue V;
    V.R = L.VarR;
    if (L.Var && L.Ty->isPointer())
      V.Space = Slots[L.Var].PtrSpace;
    return V;
  }
  Opcode Op;
  switch (L.Space) {
  case AddrSpace::Global:
    Op = Opcode::LdGlobal;
    break;
  case AddrSpace::Shared:
    Op = Opcode::LdShared;
    break;
  default:
    Op = Opcode::LdLocal;
    break;
  }
  Width W = widthOf(L.Ty);
  Reg R = newReg(W);
  Instruction I;
  I.Op = Op;
  I.W = W;
  I.Dst = R;
  I.Src[0] = L.Addr;
  I.Imm = L.Offset;
  I.MemSize = static_cast<uint8_t>(L.Ty->storeSize());
  I.MemSigned = L.Ty->isSignedInteger();
  emit(I);
  RValue V;
  V.R = R;
  return V;
}

void CodeGenImpl::emitStore(const LValue &L, RValue V) {
  if (L.K == LValue::Kind::VarReg) {
    Instruction I;
    I.Op = Opcode::Mov;
    I.W = widthOf(L.Ty);
    I.Dst = L.VarR;
    I.Src[0] = V.R;
    emit(I);
    // Track pointer address spaces through assignments.
    if (L.Var && L.Ty->isPointer() && V.Space != AddrSpace::Unknown) {
      VarSlot &Slot = Slots[L.Var];
      if (Slot.PtrSpace == AddrSpace::Unknown)
        Slot.PtrSpace = V.Space;
      else if (Slot.PtrSpace != V.Space)
        error(SourceLocation(),
              formatString("pointer '%s' is assigned addresses from two "
                           "different address spaces",
                           L.Var->name().c_str()));
    }
    return;
  }
  Opcode Op;
  switch (L.Space) {
  case AddrSpace::Global:
    Op = Opcode::StGlobal;
    break;
  case AddrSpace::Shared:
    Op = Opcode::StShared;
    break;
  default:
    Op = Opcode::StLocal;
    break;
  }
  Instruction I;
  I.Op = Op;
  I.W = widthOf(L.Ty);
  I.Src[0] = L.Addr;
  I.Src[1] = V.R;
  I.Imm = L.Offset;
  I.MemSize = static_cast<uint8_t>(L.Ty->storeSize());
  emit(I);
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

RValue CodeGenImpl::emitExpr(const Expr *E) {
  if (Failed)
    return RValue();
  switch (E->kind()) {
  case StmtKind::IntLiteral: {
    const auto *I = cast<IntLiteralExpr>(E);
    RValue V;
    V.R = emitMovImm(I->value(), widthOf(E->type()));
    return V;
  }
  case StmtKind::FloatLiteral: {
    const auto *Fl = cast<FloatLiteralExpr>(E);
    RValue V;
    if (Fl->isDouble())
      V.R = emitMovImm(std::bit_cast<uint64_t>(Fl->value()), Width::W64);
    else
      V.R = emitMovImm(
          std::bit_cast<uint32_t>(static_cast<float>(Fl->value())),
          Width::W32);
    return V;
  }
  case StmtKind::BoolLiteral: {
    RValue V;
    V.R = emitMovImm(cast<BoolLiteralExpr>(E)->value() ? 1 : 0, Width::W32);
    return V;
  }
  case StmtKind::DeclRef: {
    const auto *Ref = cast<DeclRefExpr>(E);
    VarSlot &Slot = slotOf(Ref->decl(), E->loc());
    RValue V;
    if (Slot.K == VarSlot::Kind::ScalarReg) {
      V.R = Slot.R;
      if (Ref->decl()->type()->isPointer())
        V.Space = Slot.PtrSpace;
      return V;
    }
    // Array value: its address (decay handled by the implicit cast that
    // wraps this node, which is a no-op here).
    V.R = emitMovImm(Slot.Offset,
                     Slot.K == VarSlot::Kind::SharedArray ? Width::W32
                                                          : Width::W32);
    V.Space = Slot.K == VarSlot::Kind::SharedArray ? AddrSpace::Shared
                                                   : AddrSpace::Local;
    return V;
  }
  case StmtKind::BuiltinIdx: {
    const auto *B = cast<BuiltinIdxExpr>(E);
    // Blocks may be 3-dimensional; grids are 1-dimensional here (every
    // benchmark kernel indexes the grid with blockIdx.x only).
    static const SpecialReg TidRegs[3] = {SpecialReg::TidX, SpecialReg::TidY,
                                          SpecialReg::TidZ};
    static const SpecialReg NTidRegs[3] = {
        SpecialReg::NTidX, SpecialReg::NTidY, SpecialReg::NTidZ};
    SpecialReg S = SpecialReg::TidX;
    switch (B->builtin()) {
    case BuiltinIdxKind::ThreadIdx:
      S = TidRegs[B->dim()];
      break;
    case BuiltinIdxKind::BlockIdx:
      S = SpecialReg::CtaIdX;
      break;
    case BuiltinIdxKind::BlockDim:
      S = NTidRegs[B->dim()];
      break;
    case BuiltinIdxKind::GridDim:
      S = SpecialReg::NCtaIdX;
      break;
    }
    if (B->dim() != 0 && (B->builtin() == BuiltinIdxKind::BlockIdx ||
                          B->builtin() == BuiltinIdxKind::GridDim)) {
      error(E->loc(), "grids are one-dimensional: blockIdx/gridDim only "
                      "support .x");
      return RValue();
    }
    Reg R = newReg(Width::W32);
    Instruction I;
    I.Op = Opcode::SReg;
    I.W = Width::W32;
    I.Dst = R;
    I.Imm = static_cast<int64_t>(S);
    emit(I);
    RValue V;
    V.R = R;
    return V;
  }
  case StmtKind::Paren:
    return emitExpr(cast<ParenExpr>(E)->sub());
  case StmtKind::Cast: {
    const auto *C = cast<CastExpr>(E);
    RValue Sub = emitExpr(C->sub());
    RValue V;
    V.R = emitConvert(Sub.R, C->sub()->type(), E->type(), E->loc());
    V.Space = Sub.Space; // pointer casts keep the space
    return V;
  }
  case StmtKind::Index: {
    LValue L = emitLValue(E);
    return emitLoad(L);
  }
  case StmtKind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    switch (U->op()) {
    case UnaryOpKind::Plus:
      return emitExpr(U->sub());
    case UnaryOpKind::Minus: {
      RValue S = emitExpr(U->sub());
      Width W = widthOf(E->type());
      RValue V;
      if (isFloatTy(E->type())) {
        V.R = emitUnOp(Opcode::FNeg, W, S.R);
      } else {
        Reg Zero = emitMovImm(0, W);
        V.R = emitBinOp(Opcode::ISub, W, Zero, S.R);
      }
      return V;
    }
    case UnaryOpKind::LogicalNot: {
      RValue S = emitExpr(U->sub());
      Width W = widthOf(U->sub()->type());
      Reg Zero = emitMovImm(0, W);
      Opcode Op = isFloatTy(U->sub()->type()) ? Opcode::FCmp : Opcode::ICmpU;
      RValue V;
      V.R = emitCmp(Op, CmpPred::EQ, W, S.R, Zero);
      return V;
    }
    case UnaryOpKind::BitNot: {
      RValue S = emitExpr(U->sub());
      RValue V;
      V.R = emitUnOp(Opcode::Not, widthOf(E->type()), S.R);
      return V;
    }
    case UnaryOpKind::PreInc:
    case UnaryOpKind::PreDec:
    case UnaryOpKind::PostInc:
    case UnaryOpKind::PostDec:
      return emitIncDec(U);
    case UnaryOpKind::AddrOf: {
      LValue L = emitLValue(U->sub());
      if (L.K != LValue::Kind::Mem) {
        error(E->loc(), "cannot take the address of a register variable");
        return RValue();
      }
      RValue V;
      V.R = L.Addr;
      if (L.Offset != 0) {
        Width AW = addrWidth(L.Space);
        Reg Off = emitMovImm(static_cast<uint64_t>(L.Offset), AW);
        V.R = emitBinOp(Opcode::IAdd, AW, L.Addr, Off);
      }
      V.Space = L.Space;
      return V;
    }
    case UnaryOpKind::Deref: {
      LValue L = emitLValue(E);
      return emitLoad(L);
    }
    }
    return RValue();
  }
  case StmtKind::Binary:
    return emitBinary(cast<BinaryExpr>(E));
  case StmtKind::Conditional: {
    const auto *C = cast<ConditionalExpr>(E);
    Width W = widthOf(E->type());
    Reg Res = newReg(W);
    unsigned TrueBB = newBlock();
    unsigned FalseBB = newBlock();
    unsigned EndBB = newBlock();
    emitCondBranch(C->cond(), TrueBB, FalseBB);
    startBlock(TrueBB);
    {
      RValue T = emitExpr(C->trueExpr());
      Instruction I;
      I.Op = Opcode::Mov;
      I.W = W;
      I.Dst = Res;
      I.Src[0] = T.R;
      emit(I);
    }
    emitBra(EndBB);
    startBlock(FalseBB);
    {
      RValue Fv = emitExpr(C->falseExpr());
      Instruction I;
      I.Op = Opcode::Mov;
      I.W = W;
      I.Dst = Res;
      I.Src[0] = Fv.R;
      emit(I);
    }
    emitBra(EndBB);
    startBlock(EndBB);
    RValue V;
    V.R = Res;
    return V;
  }
  case StmtKind::Call:
    return emitCallExpr(cast<CallExpr>(E));
  default:
    error(E->loc(), "unsupported expression in codegen");
    return RValue();
  }
}

RValue CodeGenImpl::emitCallExpr(const CallExpr *E) {
  if (E->calleeDecl()) {
    error(E->loc(), "user calls must be inlined before codegen");
    return RValue();
  }
  const std::string &Name = E->callee();
  auto Arg = [&](unsigned I) { return emitExpr(E->args()[I]); };

  if (Name == "__syncthreads") {
    Instruction I;
    I.Op = Opcode::Bar;
    I.Imm = 0;
    I.Imm2 = 0; // all live threads of the block
    emit(I);
    return RValue();
  }
  if (Name == "__shfl_xor_sync" || Name == "__shfl_down_sync") {
    RValue Val = Arg(1);
    RValue Lane = Arg(2);
    Width W = widthOf(E->type());
    Reg R = newReg(W);
    Instruction I;
    I.Op = Opcode::Shfl;
    I.W = W;
    I.Dst = R;
    I.Src[0] = Val.R;
    I.Src[1] = Lane.R;
    I.Imm = Name == "__shfl_down_sync" ? 1 : 0;
    emit(I);
    RValue V;
    V.R = R;
    return V;
  }
  if (Name == "atomicAdd") {
    RValue Ptr = Arg(0);
    RValue Val = Arg(1);
    const Type *ElemTy = E->type();
    Opcode Op;
    switch (Ptr.Space) {
    case AddrSpace::Global:
      Op = Opcode::AtomAddG;
      break;
    case AddrSpace::Shared:
      Op = Opcode::AtomAddS;
      break;
    default:
      error(E->loc(), "atomicAdd requires a global or shared address");
      return RValue();
    }
    Width W = widthOf(ElemTy);
    Reg R = newReg(W);
    Instruction I;
    I.Op = Op;
    I.W = W;
    I.Dst = R;
    I.Src[0] = Ptr.R;
    I.Src[1] = Val.R;
    I.MemSize = static_cast<uint8_t>(ElemTy->storeSize());
    I.AtomFloat = isFloatTy(ElemTy);
    emit(I);
    RValue V;
    V.R = R;
    return V;
  }
  if (Name == "min" || Name == "max") {
    RValue A = Arg(0);
    RValue B = Arg(1);
    bool IsMin = Name == "min";
    bool Signed = E->type()->isSignedInteger();
    Opcode Op = IsMin ? (Signed ? Opcode::IMinS : Opcode::IMinU)
                      : (Signed ? Opcode::IMaxS : Opcode::IMaxU);
    RValue V;
    V.R = emitBinOp(Op, widthOf(E->type()), A.R, B.R);
    return V;
  }
  if (Name == "fminf" || Name == "fmaxf") {
    RValue A = Arg(0);
    RValue B = Arg(1);
    RValue V;
    V.R = emitBinOp(Name == "fminf" ? Opcode::FMin : Opcode::FMax,
                    Width::W32, A.R, B.R);
    return V;
  }
  static const std::map<std::string, Opcode> UnaryMath = {
      {"sqrtf", Opcode::FSqrt},   {"fabsf", Opcode::FAbs},
      {"floorf", Opcode::FFloor}, {"rsqrtf", Opcode::FRsqrt},
      {"__expf", Opcode::FExp},   {"__logf", Opcode::FLog},
  };
  auto It = UnaryMath.find(Name);
  if (It != UnaryMath.end()) {
    RValue A = Arg(0);
    RValue V;
    V.R = emitUnOp(It->second, Width::W32, A.R);
    return V;
  }
  error(E->loc(), formatString("unknown intrinsic '%s' in codegen",
                               Name.c_str()));
  return RValue();
}

RValue CodeGenImpl::emitIncDec(const UnaryExpr *E) {
  LValue L = emitLValue(E->sub());
  RValue Old = emitLoad(L);
  const Type *Ty = E->type();
  bool Inc = E->op() == UnaryOpKind::PreInc || E->op() == UnaryOpKind::PostInc;
  bool Post =
      E->op() == UnaryOpKind::PostInc || E->op() == UnaryOpKind::PostDec;
  Width W = widthOf(Ty);

  // Postfix must return the value before modification; copy it out in
  // case the lvalue register is the same as the returned register.
  Reg Saved = Old.R;
  if (Post)
    Saved = emitMov(Old.R, W);

  RValue New;
  New.Space = Old.Space;
  if (isFloatTy(Ty)) {
    Reg One = emitMovImm(Ty->kind() == TypeKind::Double
                             ? std::bit_cast<uint64_t>(1.0)
                             : std::bit_cast<uint32_t>(1.0f),
                         W);
    New.R = emitBinOp(Inc ? Opcode::FAdd : Opcode::FSub, W, Old.R, One);
  } else {
    uint64_t Step = Ty->isPointer() ? Ty->element()->storeSize() : 1;
    Reg One = emitMovImm(Step, W);
    New.R = emitBinOp(Inc ? Opcode::IAdd : Opcode::ISub, W, Old.R, One);
  }
  emitStore(L, New);
  RValue V;
  V.R = Post ? Saved : New.R;
  V.Space = Old.Space;
  return V;
}

RValue CodeGenImpl::emitArith(BinaryOpKind Op, RValue L, RValue R,
                              const Type *LTy, const Type *RTy,
                              const Type *ResTy, SourceLocation Loc) {
  // Pointer arithmetic: scale the integer side by the element size.
  if (LTy->isPointer() || RTy->isPointer()) {
    RValue Ptr = LTy->isPointer() ? L : R;
    RValue Off = LTy->isPointer() ? R : L;
    const Type *PtrTy = LTy->isPointer() ? LTy : RTy;
    const Type *OffTy = LTy->isPointer() ? RTy : LTy;
    AddrSpace Space =
        Ptr.Space == AddrSpace::Unknown ? AddrSpace::Global : Ptr.Space;
    Width AW = addrWidth(Space);
    Reg OffR = Off.R;
    if (AW == Width::W64 && widthOf(OffTy) == Width::W32) {
      Opcode Ext =
          OffTy->isSignedInteger() ? Opcode::CvtSExt : Opcode::CvtZExt;
      OffR = emitCvt(Ext, Width::W64, Width::W32, OffR);
    }
    uint64_t ElemSize = PtrTy->element()->storeSize();
    if (ElemSize > 1) {
      if ((ElemSize & (ElemSize - 1)) == 0) {
        Reg Sh = emitMovImm(
            static_cast<uint64_t>(std::countr_zero(ElemSize)), Width::W32);
        OffR = emitBinOp(Opcode::Shl, AW, OffR, Sh);
      } else {
        Reg Sz = emitMovImm(ElemSize, AW);
        OffR = emitBinOp(Opcode::IMul, AW, OffR, Sz);
      }
    }
    RValue V;
    V.R = emitBinOp(Op == BinaryOpKind::Add ? Opcode::IAdd : Opcode::ISub,
                    AW, Ptr.R, OffR);
    V.Space = Space;
    return V;
  }

  Width W = widthOf(ResTy);
  bool Flt = isFloatTy(ResTy);
  bool Signed = ResTy->isSignedInteger();
  if (!Flt && (Op == BinaryOpKind::Div || Op == BinaryOpKind::Rem))
    return emitIntDivRem(Op == BinaryOpKind::Rem, Signed, W, L, R, RTy);
  Opcode Opc;
  switch (Op) {
  case BinaryOpKind::Add:
    Opc = Flt ? Opcode::FAdd : Opcode::IAdd;
    break;
  case BinaryOpKind::Sub:
    Opc = Flt ? Opcode::FSub : Opcode::ISub;
    break;
  case BinaryOpKind::Mul:
    Opc = Flt ? Opcode::FMul : Opcode::IMul;
    break;
  case BinaryOpKind::Div:
    Opc = Flt ? Opcode::FDiv : (Signed ? Opcode::IDivS : Opcode::IDivU);
    break;
  case BinaryOpKind::Rem:
    Opc = Signed ? Opcode::IRemS : Opcode::IRemU;
    break;
  case BinaryOpKind::Shl:
    Opc = Opcode::Shl;
    break;
  case BinaryOpKind::Shr:
    Opc = Signed ? Opcode::ShrS : Opcode::ShrU;
    break;
  case BinaryOpKind::BitAnd:
    Opc = Opcode::And;
    break;
  case BinaryOpKind::BitOr:
    Opc = Opcode::Or;
    break;
  case BinaryOpKind::BitXor:
    Opc = Opcode::Xor;
    break;
  default:
    error(Loc, "unexpected arithmetic operator");
    return RValue();
  }
  RValue V;
  V.R = emitBinOp(Opc, W, L.R, R.R);
  return V;
}

/// Integer division/remainder lowering. GPUs have no divide unit:
/// ptxas emits either a shift (power-of-two unsigned divisors) or a
/// ~10-instruction reciprocal sequence. The expansion below mirrors that
/// instruction mix so division-heavy kernels (Im2Col!) show the high
/// issue-slot utilization the paper reports; the final IDiv/IRem carries
/// the numerically exact result.
RValue CodeGenImpl::emitIntDivRem(bool IsRem, bool Signed, Width W,
                                  RValue L, RValue R, const Type *RTy) {
  RValue V;
  // Power-of-two unsigned divisor: a single shift or mask.
  if (const Expr *RE = RhsExprForDiv) {
    if (!Signed) {
      if (auto C = evalConstInt(RE)) {
        uint64_t D = static_cast<uint64_t>(*C);
        if (D != 0 && (D & (D - 1)) == 0) {
          if (IsRem) {
            Reg MaskR = emitMovImm(D - 1, W);
            V.R = emitBinOp(Opcode::And, W, L.R, MaskR);
          } else {
            Reg Sh = emitMovImm(
                static_cast<uint64_t>(std::countr_zero(D)), Width::W32);
            V.R = emitBinOp(Opcode::ShrU, W, L.R, Sh);
          }
          return V;
        }
      }
    }
  }
  (void)RTy;
  // Reciprocal-refinement expansion (issue-realistic; result from the
  // exact IDiv/IRem at the end).
  Reg T0 = emitBinOp(Opcode::ShrU, W, R.R, emitMovImm(1, Width::W32));
  Reg T1 = emitBinOp(Opcode::ISub, W, L.R, T0);
  Reg T2 = emitBinOp(Opcode::ShrU, W, T1, emitMovImm(2, Width::W32));
  Reg T3 = emitBinOp(Opcode::IAdd, W, T2, T0);
  Reg T4 = emitBinOp(Opcode::Xor, W, T3, L.R);
  Reg T5 = emitBinOp(Opcode::IMul, W, T4, R.R);
  Reg T6 = emitBinOp(Opcode::ISub, W, L.R, T5);
  Reg T7 = emitBinOp(Opcode::ShrU, W, T6, emitMovImm(1, Width::W32));
  (void)T7;
  Opcode Final = IsRem ? (Signed ? Opcode::IRemS : Opcode::IRemU)
                       : (Signed ? Opcode::IDivS : Opcode::IDivU);
  V.R = emitBinOp(Final, W, L.R, R.R);
  return V;
}

RValue CodeGenImpl::emitAssign(const BinaryExpr *E) {
  LValue L = emitLValue(E->lhs());
  if (E->op() == BinaryOpKind::Assign) {
    RValue V = emitExpr(E->rhs());
    emitStore(L, V);
    return V;
  }

  // Compound assignment: compute in the RHS (common) type, convert back.
  BinaryOpKind Op = compoundToBinaryOp(E->op());
  RValue Old = emitLoad(L);
  RValue Rhs = emitExpr(E->rhs());
  const Type *LTy = E->lhs()->type();
  const Type *RTy = E->rhs()->type();

  RValue NewV;
  if (LTy->isPointer()) {
    NewV = emitArith(Op, Old, Rhs, LTy, RTy, LTy, E->loc());
  } else if (Op == BinaryOpKind::Shl || Op == BinaryOpKind::Shr) {
    NewV = emitArith(Op, Old, Rhs, LTy, RTy, LTy, E->loc());
  } else {
    const Type *ComputeTy = RTy; // Sema converted the RHS to common type
    RValue OldC;
    OldC.R = emitConvert(Old.R, LTy, ComputeTy, E->loc());
    RValue Mid = emitArith(Op, OldC, Rhs, ComputeTy, ComputeTy, ComputeTy,
                           E->loc());
    NewV.R = emitConvert(Mid.R, ComputeTy, LTy, E->loc());
  }
  NewV.Space = Old.Space;
  emitStore(L, NewV);
  return NewV;
}

RValue CodeGenImpl::emitBinary(const BinaryExpr *E) {
  if (isAssignmentOp(E->op()))
    return emitAssign(E);

  switch (E->op()) {
  case BinaryOpKind::LogicalAnd:
  case BinaryOpKind::LogicalOr:
    return emitBoolMaterialize(E);
  case BinaryOpKind::Comma: {
    emitExpr(E->lhs());
    return emitExpr(E->rhs());
  }
  case BinaryOpKind::Lt:
  case BinaryOpKind::Gt:
  case BinaryOpKind::Le:
  case BinaryOpKind::Ge:
  case BinaryOpKind::Eq:
  case BinaryOpKind::Ne: {
    RValue L = emitExpr(E->lhs());
    RValue R = emitExpr(E->rhs());
    const Type *OpTy = E->lhs()->type();
    CmpPred P;
    switch (E->op()) {
    case BinaryOpKind::Lt:
      P = CmpPred::LT;
      break;
    case BinaryOpKind::Gt:
      P = CmpPred::GT;
      break;
    case BinaryOpKind::Le:
      P = CmpPred::LE;
      break;
    case BinaryOpKind::Ge:
      P = CmpPred::GE;
      break;
    case BinaryOpKind::Eq:
      P = CmpPred::EQ;
      break;
    default:
      P = CmpPred::NE;
      break;
    }
    Opcode Op;
    if (isFloatTy(OpTy))
      Op = Opcode::FCmp;
    else if (OpTy->isPointer() || OpTy->isUnsignedInteger() ||
             OpTy->isBool())
      Op = Opcode::ICmpU;
    else
      Op = Opcode::ICmpS;
    RValue V;
    V.R = emitCmp(Op, P, widthOf(OpTy), L.R, R.R);
    return V;
  }
  default: {
    RValue L = emitExpr(E->lhs());
    RValue R = emitExpr(E->rhs());
    RhsExprForDiv = E->rhs();
    RValue V = emitArith(E->op(), L, R, E->lhs()->type(), E->rhs()->type(),
                         E->type(), E->loc());
    RhsExprForDiv = nullptr;
    return V;
  }
  }
}

/// Materializes a boolean expression through control flow (used for the
/// value of && and ||).
RValue CodeGenImpl::emitBoolMaterialize(const Expr *E) {
  Reg Res = newReg(Width::W32);
  unsigned TrueBB = newBlock();
  unsigned FalseBB = newBlock();
  unsigned EndBB = newBlock();
  emitCondBranch(E, TrueBB, FalseBB);
  startBlock(TrueBB);
  {
    Instruction I;
    I.Op = Opcode::MovImm;
    I.W = Width::W32;
    I.Dst = Res;
    I.Imm = 1;
    emit(I);
  }
  emitBra(EndBB);
  startBlock(FalseBB);
  {
    Instruction I;
    I.Op = Opcode::MovImm;
    I.W = Width::W32;
    I.Dst = Res;
    I.Imm = 0;
    emit(I);
  }
  emitBra(EndBB);
  startBlock(EndBB);
  RValue V;
  V.R = Res;
  return V;
}

void CodeGenImpl::emitCondBranch(const Expr *E, unsigned TrueBB,
                                 unsigned FalseBB) {
  if (Failed)
    return;
  if (const auto *P = dyn_cast<ParenExpr>(E)) {
    emitCondBranch(P->sub(), TrueBB, FalseBB);
    return;
  }
  if (const auto *B = dyn_cast<BinaryExpr>(E)) {
    if (B->op() == BinaryOpKind::LogicalAnd) {
      unsigned Mid = newBlock();
      emitCondBranch(B->lhs(), Mid, FalseBB);
      startBlock(Mid);
      emitCondBranch(B->rhs(), TrueBB, FalseBB);
      return;
    }
    if (B->op() == BinaryOpKind::LogicalOr) {
      unsigned Mid = newBlock();
      emitCondBranch(B->lhs(), TrueBB, Mid);
      startBlock(Mid);
      emitCondBranch(B->rhs(), TrueBB, FalseBB);
      return;
    }
  }
  if (const auto *U = dyn_cast<UnaryExpr>(E)) {
    if (U->op() == UnaryOpKind::LogicalNot) {
      emitCondBranch(U->sub(), FalseBB, TrueBB);
      return;
    }
  }
  RValue V = emitExpr(E);
  Reg CondR = V.R;
  if (isFloatTy(E->type()))
    CondR = emitTestNonZero(V.R, E->type());
  emitCBra(CondR, TrueBB, FalseBB);
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

void CodeGenImpl::emitStmt(const Stmt *S) {
  if (!S || Failed)
    return;
  switch (S->kind()) {
  case StmtKind::Compound:
    emitCompound(cast<CompoundStmt>(S));
    return;
  case StmtKind::Decl: {
    for (const VarDecl *V : cast<DeclStmt>(S)->decls()) {
      declareVar(V, S->loc());
      if (V->init() && !V->type()->isArray()) {
        RValue Init = emitExpr(V->init());
        LValue L;
        L.K = LValue::Kind::VarReg;
        L.VarR = Slots[V].R;
        L.Var = V;
        L.Ty = V->type();
        emitStore(L, Init);
      }
    }
    return;
  }
  case StmtKind::ExprStmtKind: {
    if (const Expr *E = cast<ExprStmt>(S)->expr())
      emitExpr(E);
    return;
  }
  case StmtKind::If: {
    const auto *I = cast<IfStmt>(S);
    unsigned ThenBB = newBlock();
    unsigned EndBB = newBlock();
    unsigned ElseBB = I->elseStmt() ? newBlock() : EndBB;
    emitCondBranch(I->cond(), ThenBB, ElseBB);
    startBlock(ThenBB);
    emitStmt(I->thenStmt());
    if (!Sealed)
      emitBra(EndBB);
    if (I->elseStmt()) {
      startBlock(ElseBB);
      emitStmt(I->elseStmt());
      if (!Sealed)
        emitBra(EndBB);
    }
    CurBlock = EndBB;
    Sealed = false;
    return;
  }
  case StmtKind::For: {
    const auto *Fo = cast<ForStmt>(S);
    emitStmt(Fo->init());
    unsigned CondBB = newBlock();
    unsigned BodyBB = newBlock();
    unsigned IncBB = newBlock();
    unsigned EndBB = newBlock();
    startBlock(CondBB);
    if (Fo->cond())
      emitCondBranch(Fo->cond(), BodyBB, EndBB);
    else
      emitBra(BodyBB);
    startBlock(BodyBB);
    BreakStack.push_back(EndBB);
    ContinueStack.push_back(IncBB);
    emitStmt(Fo->body());
    BreakStack.pop_back();
    ContinueStack.pop_back();
    if (!Sealed)
      emitBra(IncBB);
    startBlock(IncBB);
    if (Fo->inc())
      emitExpr(Fo->inc());
    emitBra(CondBB);
    CurBlock = EndBB;
    Sealed = false;
    return;
  }
  case StmtKind::While: {
    const auto *W = cast<WhileStmt>(S);
    unsigned CondBB = newBlock();
    unsigned BodyBB = newBlock();
    unsigned EndBB = newBlock();
    startBlock(CondBB);
    emitCondBranch(W->cond(), BodyBB, EndBB);
    startBlock(BodyBB);
    BreakStack.push_back(EndBB);
    ContinueStack.push_back(CondBB);
    emitStmt(W->body());
    BreakStack.pop_back();
    ContinueStack.pop_back();
    if (!Sealed)
      emitBra(CondBB);
    CurBlock = EndBB;
    Sealed = false;
    return;
  }
  case StmtKind::Return: {
    assert(!cast<ReturnStmt>(S)->value() && "kernels return void");
    Instruction I;
    I.Op = Opcode::Exit;
    emit(I);
    // Anything that follows in this source block is unreachable; give it
    // a fresh block so the builder invariants hold.
    CurBlock = newBlock();
    Sealed = false;
    return;
  }
  case StmtKind::Break:
  case StmtKind::Continue: {
    const auto &Stack =
        S->kind() == StmtKind::Break ? BreakStack : ContinueStack;
    if (Stack.empty()) {
      error(S->loc(), "break/continue outside of a loop");
      return;
    }
    emitBra(Stack.back());
    CurBlock = newBlock();
    Sealed = false;
    return;
  }
  case StmtKind::Goto: {
    emitBra(labelBlock(cast<GotoStmt>(S)->label()));
    CurBlock = newBlock();
    Sealed = false;
    return;
  }
  case StmtKind::Label: {
    const auto *L = cast<LabelStmt>(S);
    unsigned BB = labelBlock(L->name());
    startBlock(BB);
    emitStmt(L->sub());
    return;
  }
  case StmtKind::Asm: {
    const auto *A = cast<AsmStmt>(S);
    int Id = 0, Count = 0;
    if (std::sscanf(A->text().c_str(), "bar.sync %d, %d;", &Id, &Count) ==
        2) {
      if (Id < 0 || Id > 15 || Count <= 0 || Count % 32 != 0) {
        error(S->loc(), "invalid bar.sync operands");
        return;
      }
      Instruction I;
      I.Op = Opcode::Bar;
      I.Imm = Id;
      I.Imm2 = Count;
      emit(I);
      return;
    }
    error(S->loc(), formatString("unsupported inline asm '%s'",
                                 A->text().c_str()));
    return;
  }
  default:
    assert(isa<Expr>(S) && "unknown statement kind in codegen");
    return;
  }
}

void CodeGenImpl::emitCompound(const CompoundStmt *S) {
  for (const Stmt *Sub : S->body()) {
    if (Failed)
      return;
    emitStmt(Sub);
  }
}

std::unique_ptr<IRKernel> CodeGenImpl::run() {
  K = std::make_unique<IRKernel>();
  K->Name = F->name();
  K->addBlock();
  CurBlock = 0;
  Sealed = false;

  // Parameters first: the launcher writes them into known registers.
  for (const VarDecl *P : F->params()) {
    Reg R = newReg(widthOf(P->type()));
    K->ParamRegs.push_back(R);
    VarSlot Slot;
    Slot.K = VarSlot::Kind::ScalarReg;
    Slot.R = R;
    Slot.PtrSpace =
        P->type()->isPointer() ? AddrSpace::Global : AddrSpace::Unknown;
    Slots[P] = Slot;
  }

  layoutSharedAndLocals();
  emitCompound(F->body());
  if (!Sealed) {
    Instruction I;
    I.Op = Opcode::Exit;
    emit(I);
  }

  // Label blocks that were referenced but never defined would leave
  // dangling branch targets; Sema guarantees they exist, but blocks
  // created for labels at the very end of the body may be empty.
  for (BasicBlock &B : K->Blocks) {
    if (B.Insts.empty() || !B.Insts.back().isTerminator()) {
      Instruction I;
      I.Op = Opcode::Exit;
      B.Insts.push_back(I);
    }
  }

  if (Failed)
    return nullptr;
  K->NumRegs = static_cast<unsigned>(K->RegWidths.size());
  K->linearize();
  return std::move(K);
}

} // namespace

std::unique_ptr<IRKernel>
hfuse::codegen::compileKernel(const FunctionDecl *F,
                              DiagnosticEngine &Diags) {
  return CodeGenImpl(F, Diags).run();
}
