//===-- codegen/CodeGen.h - CuLite to SASS-lite lowering --------*- C++ -*-===//
//
// Part of the HFuse reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a preprocessed, Sema-resolved CuLite kernel to the SASS-lite
/// IR executed by the GPU simulator. Replaces nvcc/ptxas in the paper's
/// toolchain. Highlights:
///
///  - shared-memory layout: statically sized __shared__ arrays get
///    sequential offsets; `extern __shared__` starts after them, exactly
///    like the CUDA driver's dynamic shared region;
///  - pointer address-space inference (global / shared / local), needed
///    because CuLite pointers (like CUDA generic pointers) do not name
///    their space, but Ld/St opcodes must;
///  - `asm("bar.sync id, count;")` lowers to the Bar instruction with
///    the same id/count semantics, which is how HFuse's partial barriers
///    reach the simulator;
///  - short-circuit &&/||, ?:, and goto lower to explicit control flow.
///
//===----------------------------------------------------------------------===//

#ifndef HFUSE_CODEGEN_CODEGEN_H
#define HFUSE_CODEGEN_CODEGEN_H

#include "cudalang/AST.h"
#include "ir/IR.h"
#include "support/Diagnostics.h"

#include <memory>

namespace hfuse::codegen {

/// Compiles kernel \p F (preprocessed: no user calls). Returns null and
/// reports diagnostics on failure. Register allocation is NOT run; call
/// ir::allocateRegisters on the result before simulating it.
std::unique_ptr<ir::IRKernel> compileKernel(const cuda::FunctionDecl *F,
                                            DiagnosticEngine &Diags);

} // namespace hfuse::codegen

#endif // HFUSE_CODEGEN_CODEGEN_H
